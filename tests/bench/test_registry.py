"""Tests for the corpus registry, build memoization, and design sharding."""

from __future__ import annotations

import pytest

from repro.bench import (
    DEFAULT_CORPUS,
    SMOKE_CORPUS,
    TEST_SPECS,
    TRAINING_SPECS,
    AssertionBenchCorpus,
    CorpusRegistry,
    build_cache_stats,
    get_corpus,
    list_corpora,
    register_corpus,
)


class TestRegistry:
    def test_default_corpus_is_registered(self):
        names = [entry.name for entry in list_corpora()]
        assert DEFAULT_CORPUS in names and SMOKE_CORPUS in names

    def test_get_corpus_builds_full_benchmark(self):
        corpus = get_corpus(DEFAULT_CORPUS)
        assert len(corpus.names("train")) == 5
        assert len(corpus.names("test")) == 100

    def test_smoke_corpus_is_small(self):
        corpus = get_corpus(SMOKE_CORPUS)
        assert len(corpus.names("train")) == 5
        assert len(corpus.names("test")) == 6

    def test_unknown_corpus_raises_with_known_names(self):
        with pytest.raises(KeyError, match="assertionbench"):
            get_corpus("nonexistent")

    def test_duplicate_registration_rejected_unless_replace(self):
        registry = CorpusRegistry()
        registry.register("x", AssertionBenchCorpus)
        with pytest.raises(ValueError):
            registry.register("x", AssertionBenchCorpus)
        registry.register("x", AssertionBenchCorpus, replace=True)
        assert "x" in registry

    def test_register_corpus_is_visible_through_get(self):
        register_corpus(
            "test-only-tiny",
            lambda: AssertionBenchCorpus(TRAINING_SPECS + TEST_SPECS[:1]),
            "one test design",
            replace=True,
        )
        assert len(get_corpus("test-only-tiny").names("test")) == 1


class TestBuildMemoization:
    def test_design_objects_are_shared_across_corpora(self):
        first = AssertionBenchCorpus()
        second = AssertionBenchCorpus()
        assert first.design("counter") is second.design("counter")
        assert first.design("arb2") is second.design("arb2")

    def test_builders_run_at_most_once_per_spec(self):
        corpus = AssertionBenchCorpus()
        corpus.design("counter")
        before = build_cache_stats()
        corpus.design("counter")
        AssertionBenchCorpus().design("counter")
        after = build_cache_stats()
        assert after == before

    def test_registry_shard_shares_builds_with_full_corpus(self):
        full = get_corpus(DEFAULT_CORPUS)
        shard = get_corpus(DEFAULT_CORPUS, shard=(0, 4))
        name = shard.names("test")[0]
        assert shard.design(name) is full.design(name)


class TestSharding:
    def test_shards_partition_the_test_split(self):
        corpus = AssertionBenchCorpus()
        shards = [corpus.shard(index, 4) for index in range(4)]
        test_names = [name for shard in shards for name in shard.names("test")]
        assert sorted(test_names) == sorted(corpus.names("test"))
        assert len(test_names) == len(set(test_names))

    def test_every_shard_keeps_all_training_designs(self):
        corpus = AssertionBenchCorpus()
        for index in range(3):
            assert corpus.shard(index, 3).names("train") == corpus.names("train")

    def test_shard_sizes_differ_by_at_most_one(self):
        corpus = AssertionBenchCorpus()
        sizes = [len(corpus.shard(index, 3).names("test")) for index in range(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_identity(self):
        corpus = AssertionBenchCorpus()
        assert corpus.shard(0, 1).names() == corpus.names()

    def test_invalid_shard_arguments(self):
        corpus = AssertionBenchCorpus()
        with pytest.raises(ValueError):
            corpus.shard(3, 3)
        with pytest.raises(ValueError):
            corpus.shard(0, 0)
