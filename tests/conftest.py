"""Shared fixtures: reference designs, corpus, and knowledge base.

Expensive artefacts (the corpus, mined assertion pools) are session-scoped so
the whole suite builds them once.
"""

from __future__ import annotations

import pytest

from repro.bench import AssertionBenchCorpus, DesignKnowledgeBase, build_icl_examples
from repro.hdl import Design

ARB2_SOURCE = """
module arb2(clk, rst, req1, req2, gnt1, gnt2);
  input clk, rst, req1, req2;
  output gnt1, gnt2;
  reg gnt_;
  reg gnt1, gnt2;
  always @(posedge clk or posedge rst)
    if (rst)
      gnt_ <= 0;
    else
      gnt_ <= gnt1;
  always @(*)
    if (gnt_)
      begin
        gnt1 = req1 & ~req2;
        gnt2 = req2;
      end
    else
      begin
        gnt1 = req1;
        gnt2 = req2 & ~req1;
      end
endmodule
"""

COUNTER_SOURCE = """
module counter #(parameter WIDTH = 4) (
  input clk,
  input rst,
  input en,
  output reg [WIDTH-1:0] count
);
  always @(posedge clk or posedge rst) begin
    if (rst)
      count <= 0;
    else if (en)
      count <= count + 1;
  end
endmodule
"""

ADDER_SOURCE = """
module adder(a, b, sum, carry);
  input [3:0] a, b;
  output [3:0] sum;
  output carry;
  wire [4:0] total;
  assign total = a + b;
  assign sum = total[3:0];
  assign carry = total[4];
endmodule
"""


@pytest.fixture(scope="session")
def arb2_design() -> Design:
    return Design.from_source(ARB2_SOURCE, name="arb2")


@pytest.fixture(scope="session")
def counter_design() -> Design:
    return Design.from_source(COUNTER_SOURCE, name="counter")


@pytest.fixture(scope="session")
def adder_design() -> Design:
    return Design.from_source(ADDER_SOURCE, name="adder")


@pytest.fixture(scope="session")
def corpus() -> AssertionBenchCorpus:
    return AssertionBenchCorpus()


@pytest.fixture(scope="session")
def knowledge(corpus) -> DesignKnowledgeBase:
    return DesignKnowledgeBase()


@pytest.fixture(scope="session")
def icl_examples(corpus, knowledge):
    return build_icl_examples(corpus, knowledge)
