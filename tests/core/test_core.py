"""Tests for the evaluation framework: metrics, pipeline, campaigns, reports."""

import pytest

from repro.core import (
    CEX,
    ERROR,
    PASS,
    EvaluationMatrix,
    EvaluationPipeline,
    FinetuneEvaluationConfig,
    FinetuneEvaluator,
    IclEvaluationConfig,
    IclEvaluator,
    MetricCounts,
    ModelKshotResult,
    PipelineConfig,
    all_observations,
    categorize,
    figure3_design_sizes,
    figure6_accuracy,
    figure7_model_comparison,
    ice_statistics,
    table1_design_details,
)
from repro.core.metrics import AssertionOutcome, DesignEvaluation
from repro.core.reports import accuracy_matrix_report, corpus_summary
from repro.fpv.result import ProofResult, ProofStatus
from repro.llm import CODELLAMA_2, GPT_4O, LLAMA3_70B, SimulatedCotsLLM


class TestMetrics:
    def test_categorize_maps_verdicts(self):
        assert categorize(ProofResult(status=ProofStatus.PROVEN)) == PASS
        assert categorize(ProofResult(status=ProofStatus.VACUOUS)) == PASS
        assert categorize(ProofResult(status=ProofStatus.CEX)) == CEX
        assert categorize(ProofResult(status=ProofStatus.ERROR)) == ERROR

    def test_metric_counts_and_fractions(self):
        counts = MetricCounts()
        for category in (PASS, PASS, CEX, ERROR):
            counts.add(category)
        assert counts.total == 4
        fractions = counts.fractions()
        assert fractions[PASS] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            counts.add("bogus")

    def test_matrix_aggregation(self):
        result = ModelKshotResult(model_name="m", k=1)
        design_eval = DesignEvaluation(design_name="d")
        design_eval.outcomes.append(
            AssertionOutcome("d", "m", 1, "raw", "fixed", PASS)
        )
        design_eval.outcomes.append(
            AssertionOutcome("d", "m", 1, "raw2", "fixed2", CEX)
        )
        result.designs.append(design_eval)
        matrix = EvaluationMatrix()
        matrix.add(result)
        assert matrix.get("m", 1).pass_fraction == pytest.approx(0.5)
        assert matrix.model_names == ["m"]
        assert matrix.k_values == [1]
        assert list(matrix.get("m", 1).outcomes())


@pytest.fixture(scope="module")
def small_evaluator(corpus, knowledge, icl_examples):
    return IclEvaluator(
        corpus=corpus,
        knowledge=knowledge,
        examples=icl_examples,
        config=IclEvaluationConfig(num_test_designs=5),
    )


@pytest.fixture(scope="module")
def small_matrix(small_evaluator):
    return small_evaluator.evaluate(
        [SimulatedCotsLLM(p, small_evaluator.knowledge) for p in (GPT_4O, LLAMA3_70B)]
    )


class TestPipeline:
    def test_pipeline_classifies_every_generated_assertion(self, small_evaluator, corpus, icl_examples):
        design = corpus.design("counter")
        generator = SimulatedCotsLLM(GPT_4O, small_evaluator.knowledge)
        evaluation = small_evaluator.pipeline.evaluate_design(
            generator, design, icl_examples.for_k(1), k=1
        )
        assert evaluation.num_generated > 0
        assert all(o.category in (PASS, CEX, ERROR) for o in evaluation.outcomes)
        assert all(o.proof is not None for o in evaluation.outcomes)

    def test_verdict_cache_is_used(self, small_evaluator, corpus, icl_examples):
        design = corpus.design("counter")
        generator = SimulatedCotsLLM(GPT_4O, small_evaluator.knowledge)
        before = small_evaluator.pipeline.cache.hits
        small_evaluator.pipeline.evaluate_design(generator, design, icl_examples.for_k(1), k=1)
        small_evaluator.pipeline.evaluate_design(generator, design, icl_examples.for_k(1), k=1)
        assert small_evaluator.pipeline.cache.hits > before

    def test_disabling_corrector_increases_or_keeps_errors(self, corpus, knowledge, icl_examples):
        design = corpus.design("counter")
        pipeline = EvaluationPipeline(PipelineConfig())
        generator = SimulatedCotsLLM(LLAMA3_70B, knowledge)
        with_corrector = pipeline.evaluate_design(
            generator, design, icl_examples.for_k(5), k=5, use_corrector=True
        )
        without_corrector = pipeline.evaluate_design(
            generator, design, icl_examples.for_k(5), k=5, use_corrector=False
        )
        errors_with = with_corrector.counts.error
        errors_without = without_corrector.counts.error
        assert errors_without >= errors_with


class TestCampaigns:
    def test_icl_matrix_shape(self, small_matrix):
        assert set(small_matrix.model_names) == {GPT_4O.name, LLAMA3_70B.name}
        assert small_matrix.k_values == [1, 5]
        for model in small_matrix.model_names:
            for k in (1, 5):
                result = small_matrix.get(model, k)
                assert result.num_assertions > 0
                total = sum(result.accuracy.values())
                assert total == pytest.approx(1.0)

    def test_finetune_campaign(self, corpus, knowledge, icl_examples):
        evaluator = FinetuneEvaluator(
            corpus=corpus,
            knowledge=knowledge,
            examples=icl_examples,
            config=FinetuneEvaluationConfig(num_designs=8),
        )
        campaign = evaluator.evaluate([CODELLAMA_2])
        tuned_name = campaign.matrix.model_names[0]
        assert "CodeLLaMa" in tuned_name
        report = campaign.reports[CODELLAMA_2.name]
        assert report.num_train_designs > report.num_test_designs
        assert 0 < campaign.matrix.get(tuned_name, 1).num_assertions


class TestReports:
    def test_figure3_and_table1(self, corpus):
        figure3 = figure3_design_sizes(corpus)
        assert len(figure3.rows) == 100
        table1 = table1_design_details(corpus)
        assert len(table1.rows) == 5
        assert "ca_prng" in table1.text

    def test_corpus_summary_and_ice_stats(self, corpus, icl_examples):
        summary = corpus_summary(corpus)
        assert any("test designs" in row[0] for row in summary.rows)
        ice = ice_statistics(icl_examples)
        assert ice.rows[-1][0] == "average"

    def test_figure6_and_7_rendering(self, small_matrix):
        figure6 = figure6_accuracy(small_matrix, GPT_4O.name)
        assert "1-shot" in figure6.series and "5-shot" in figure6.series
        assert "Pass" in figure6.text
        figure7 = figure7_model_comparison(small_matrix, 1)
        assert GPT_4O.name in figure7.series

    def test_accuracy_matrix_report(self, small_matrix):
        report = accuracy_matrix_report(small_matrix, "test")
        assert len(report.rows) == 4


class TestObservations:
    def test_observation_checks_are_produced(self, small_matrix):
        checks = all_observations(small_matrix)
        assert checks
        assert all(check.summary() for check in checks)
        observations = {check.observation for check in checks}
        assert "Observation 3" in observations and "Observation 4" in observations
