"""Persistent reachability cache: store round-trips and scheduler warm-up."""

from __future__ import annotations

from repro.core import RunStore, SchedulerConfig, VerificationService
from repro.core.store import PersistentReachabilityCache
from repro.fpv import (
    EngineConfig,
    FormalEngine,
    ReachabilityCache,
    enumerate_reachable,
    reachability_key,
)
from repro.fpv.transition import ReachabilityResult, TransitionSystem


def _reach(design, **caps):
    system = TransitionSystem(design, max_input_bits=12)
    return enumerate_reachable(system, **caps)


class TestReachabilityCache:
    def test_hit_and_miss_accounting(self, counter_design):
        cache = ReachabilityCache()
        key = reachability_key(counter_design, EngineConfig())
        assert cache.get(key) is None
        cache.put(key, _reach(counter_design))
        assert cache.get(key) is not None
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_key_covers_caps_and_source(self, counter_design, corpus):
        base = reachability_key(counter_design, EngineConfig())
        assert base != reachability_key(counter_design, EngineConfig(max_states=7))
        assert base != reachability_key(corpus.design("arb2"), EngineConfig())

    def test_engine_uses_cache(self, counter_design):
        cache = ReachabilityCache()
        first = FormalEngine(counter_design, reachability_cache=cache)
        verdict = first.check("(count <= 15);")
        assert verdict.is_pass
        assert len(cache) == 1
        # a second engine replays the cached result instead of re-walking
        second = FormalEngine(counter_design, reachability_cache=cache)
        second.check("(count <= 15);")
        assert cache.hits >= 1
        assert second.reachability_snapshot().states == first.reachability_snapshot().states


class TestPersistentReachabilityCache:
    def test_round_trip(self, tmp_path, counter_design):
        path = tmp_path / "reachability.jsonl"
        cache = PersistentReachabilityCache(path)
        key = reachability_key(counter_design, EngineConfig())
        result = _reach(counter_design)
        cache.put(key, result)
        cache.close()

        reloaded = PersistentReachabilityCache(path)
        assert reloaded.loaded_entries == 1
        got = reloaded.get(key)
        assert got is not None
        assert got.states == result.states
        assert got.complete == result.complete
        assert got.transitions_explored == result.transitions_explored

    def test_incomplete_results_persist_too(self, tmp_path, counter_design):
        path = tmp_path / "reachability.jsonl"
        cache = PersistentReachabilityCache(path)
        key = ("fp", 5, 9, 12)
        cache.put(key, _reach(counter_design, max_states=5, max_transitions=9))
        cache.close()
        got = PersistentReachabilityCache(path).get(key)
        assert got is not None and not got.complete

    def test_torn_line_is_skipped(self, tmp_path):
        path = tmp_path / "reachability.jsonl"
        path.write_text('{"design": "x", "max_states": 1\n', encoding="utf-8")
        cache = PersistentReachabilityCache(path)
        assert cache.loaded_entries == 0

    def test_run_store_owns_one_instance(self, tmp_path):
        store = RunStore(tmp_path / "run")
        assert store.reachability_cache() is store.reachability_cache()
        store.close()


class TestSchedulerWarmup:
    def test_service_populates_and_replays(self, tmp_path, counter_design):
        store = RunStore(tmp_path / "run")
        config = SchedulerConfig(engine=EngineConfig(), workers=1)
        with VerificationService(
            config, reachability_cache=store.reachability_cache()
        ) as service:
            service.check_design(counter_design, ["(count <= 15);"])
        assert len(store.reachability_cache()) == 1
        store.close()

        # a fresh process-equivalent: new store object over the same dir
        warm = RunStore(tmp_path / "run")
        cache = warm.reachability_cache()
        assert cache.loaded_entries == 1
        with VerificationService(config, reachability_cache=cache) as service:
            results = service.check_design(counter_design, ["(count <= 15);"])
        assert results[0].is_pass
        assert cache.hits >= 1
        warm.close()

    def test_preloaded_result_not_rewritten(self, tmp_path, counter_design):
        store = RunStore(tmp_path / "run")
        cache = store.reachability_cache()
        config = SchedulerConfig(engine=EngineConfig(), workers=1)
        with VerificationService(config, reachability_cache=cache) as service:
            service.check_design(counter_design, ["(count <= 15);"])
            service.check_design(counter_design, ["(count >= 0);"])
        # second batch replayed the cached result: still exactly one line
        lines = [
            line
            for line in cache.path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        assert len(lines) == 1
        store.close()

    def test_runtime_adopts_store_reachability_cache(self, tmp_path):
        from repro.core import CampaignRuntime
        from repro.core.runtime import PipelineConfig

        store = RunStore(tmp_path / "adopt")
        service = VerificationService(
            SchedulerConfig(engine=EngineConfig()), cache=store.verdict_cache()
        )
        runtime = CampaignRuntime(
            config=PipelineConfig(), service=service, store=store
        )
        assert service.reachability_cache is store.reachability_cache()
        runtime.close()
        store.close()

    def test_preload_round_trips_through_engine(self, counter_design):
        result = _reach(counter_design)
        engine = FormalEngine(counter_design)
        engine.preload_reachability(result)
        assert engine.check("(count <= 15);").is_pass
        assert engine.reachability_snapshot() is result

    def test_results_identical_with_and_without_cache(self, counter_design):
        cold = FormalEngine(counter_design).check("(count <= 15);")
        cache = ReachabilityCache()
        FormalEngine(counter_design, reachability_cache=cache).check("(count <= 15);")
        warm = FormalEngine(counter_design, reachability_cache=cache).check(
            "(count <= 15);"
        )
        assert (cold.status, cold.complete, cold.states_explored) == (
            warm.status,
            warm.complete,
            warm.states_explored,
        )


def test_reachability_result_shape(counter_design):
    result = _reach(counter_design)
    assert isinstance(result, ReachabilityResult)
    assert result.count == 16 and result.complete
