"""Golden-text tests for the report renderers behind the CLI ``report`` verb.

The rendered text of every table/figure is pinned exactly: the CLI, the
benchmark harness, and EXPERIMENTS.md all print these renderings, so a
formatting or aggregation change must show up as an explicit golden update
here, not as silent drift.
"""

from __future__ import annotations

import hashlib

from repro.core import EvaluationMatrix, ModelKshotResult
from repro.core.metrics import CEX, ERROR, PASS, AssertionOutcome, DesignEvaluation
from repro.core.reports import (
    accuracy_matrix_report,
    corpus_summary,
    figure3_design_sizes,
    figure6_accuracy,
    figure7_model_comparison,
    figure9_finetuned,
    table1_design_details,
)

TABLE1_GOLDEN = (
    "Table I: representative designs in the AssertionBench test set\n"
    "Verilog Design           # of Lines  Design Type    Design Functionality            \n"
    "-----------------------  ----------  -------------  --------------------------------\n"
    "ca_prng                  1105        Sequential     Compact pattern generator       \n"
    "cavlc_read_total_coeffs  1089        Sequential     Video encoder coefficient table \n"
    "cavlc_read_total_zeros   676         Combinational  Video encoder total-zeros table \n"
    "ge_prng_mid              369         Sequential     16-bank pattern generator       \n"
    "cavlc_read_levels        321         Sequential     Video encoder level decode table"
)

CORPUS_SUMMARY_GOLDEN = (
    "AssertionBench corpus summary\n"
    "metric            value\n"
    "----------------  -----\n"
    "test designs      100  \n"
    "training designs  5    \n"
    "combinational     28   \n"
    "sequential        72   \n"
    "min LoC           7    \n"
    "max LoC           1105 \n"
    "mean LoC          69.4 "
)

#: Full Figure 3 table (100 rows) pinned by content hash; head pinned inline.
FIGURE3_SHA256 = "f2874e9d9e5e20af0313089e282d3ee50f9694e76fe58177892f339633c3a403"
FIGURE3_HEAD = (
    "Figure 3: test-set design sizes (LoC, excluding comments and blanks)\n"
    "design                   loc \n"
    "-----------------------  ----\n"
    "ca_prng                  1105"
)

FIGURE6_GOLDEN = (
    "Accuracy of generated assertions for GPT-4o\n"
    "k       Pass   CEX    Error\n"
    "------  -----  -----  -----\n"
    "1-shot  0.600  0.300  0.100\n"
    "5-shot  0.800  0.100  0.100"
)

FIGURE7_GOLDEN = (
    "Comparison of generated-assertion accuracy across models (1-shot)\n"
    "model       Pass   CEX    Error\n"
    "----------  -----  -----  -----\n"
    "GPT-4o      0.600  0.300  0.100\n"
    "LLaMa3-70B  0.400  0.400  0.200"
)

ACCURACY_MATRIX_GOLDEN = (
    "Accuracy matrix\n"
    "model       k  # assertions  Pass   CEX    Error\n"
    "----------  -  ------------  -----  -----  -----\n"
    "GPT-4o      1  10            0.600  0.300  0.100\n"
    "GPT-4o      5  10            0.800  0.100  0.100\n"
    "LLaMa3-70B  1  10            0.400  0.400  0.200\n"
    "LLaMa3-70B  5  10            0.500  0.400  0.100"
)


def _sweep(model: str, k: int, passed: int, cex: int, error: int) -> ModelKshotResult:
    result = ModelKshotResult(model_name=model, k=k)
    evaluation = DesignEvaluation(design_name="d")
    for category, count in ((PASS, passed), (CEX, cex), (ERROR, error)):
        for index in range(count):
            evaluation.outcomes.append(
                AssertionOutcome("d", model, k, f"raw{index}", f"cor{index}", category)
            )
    result.designs.append(evaluation)
    return result


def _fixed_matrix() -> EvaluationMatrix:
    matrix = EvaluationMatrix()
    matrix.add(_sweep("GPT-4o", 1, 6, 3, 1))
    matrix.add(_sweep("GPT-4o", 5, 8, 1, 1))
    matrix.add(_sweep("LLaMa3-70B", 1, 4, 4, 2))
    matrix.add(_sweep("LLaMa3-70B", 5, 5, 4, 1))
    return matrix


class TestCorpusTables:
    def test_table1_golden(self, corpus):
        assert table1_design_details(corpus).text == TABLE1_GOLDEN

    def test_corpus_summary_golden(self, corpus):
        assert corpus_summary(corpus).text == CORPUS_SUMMARY_GOLDEN

    def test_figure3_golden(self, corpus):
        figure3 = figure3_design_sizes(corpus)
        assert figure3.text.startswith(FIGURE3_HEAD)
        assert len(figure3.rows) == 100
        assert hashlib.sha256(figure3.text.encode()).hexdigest() == FIGURE3_SHA256


class TestAccuracyFigures:
    def test_figure6_golden(self):
        assert figure6_accuracy(_fixed_matrix(), "GPT-4o").text == FIGURE6_GOLDEN

    def test_figure7_golden(self):
        assert figure7_model_comparison(_fixed_matrix(), 1).text == FIGURE7_GOLDEN

    def test_figure9_reuses_figure6_rendering(self):
        figures = figure9_finetuned(_fixed_matrix())
        assert set(figures) == {"GPT-4o", "LLaMa3-70B"}
        assert figures["GPT-4o"].text == FIGURE6_GOLDEN

    def test_accuracy_matrix_golden(self):
        assert accuracy_matrix_report(_fixed_matrix(), "Accuracy matrix").text == ACCURACY_MATRIX_GOLDEN
