"""Tests for the durable campaign runtime: streaming, checkpointing, resume."""

from __future__ import annotations

import pytest

from repro.core import (
    CampaignRuntime,
    EvaluationMatrix,
    EvaluationPipeline,
    PipelineConfig,
    ResumeMismatchError,
    RunStore,
    campaign_config,
)
from repro.fpv import EngineConfig
from repro.llm import GPT_35, GPT_4O, SimulatedCotsLLM

_FAST_ENGINE = EngineConfig(
    max_states=1024,
    max_transitions=60_000,
    max_input_bits=8,
    max_state_bits=12,
    max_path_evaluations=60_000,
    fallback_cycles=96,
    fallback_seeds=1,
)


def _fast_config() -> PipelineConfig:
    return PipelineConfig(engine=_FAST_ENGINE, workers=1)


def _matrix_signature(matrix: EvaluationMatrix):
    """Order-sensitive content fingerprint of a whole evaluation matrix."""
    signature = {}
    for model_name in matrix.model_names:
        for k, result in matrix.results[model_name].items():
            signature[(model_name, k)] = [
                (
                    evaluation.design_name,
                    [
                        (o.raw_text, o.corrected_text, o.category, o.correction_applied)
                        for o in evaluation.outcomes
                    ],
                )
                for evaluation in result.designs
            ]
    return signature


@pytest.fixture(scope="module")
def campaign_designs(corpus):
    return corpus.test_designs(limit=5)


@pytest.fixture(scope="module")
def generators(knowledge):
    return [SimulatedCotsLLM(GPT_4O, knowledge), SimulatedCotsLLM(GPT_35, knowledge)]


@pytest.fixture(scope="module")
def reference_matrix(generators, campaign_designs, icl_examples):
    """The uninterrupted, store-less campaign everything else must match."""
    with CampaignRuntime(config=_fast_config()) as runtime:
        return runtime.run_campaign(generators, (1,), campaign_designs, icl_examples)


class TestStreaming:
    def test_streaming_matches_pipeline_facade(
        self, generators, campaign_designs, icl_examples, reference_matrix
    ):
        """The EvaluationPipeline facade and the runtime agree exactly."""
        with EvaluationPipeline(config=_fast_config()) as pipeline:
            evaluations = pipeline.evaluate_designs(
                generators[0], campaign_designs, icl_examples.for_k(1), k=1
            )
        expected = reference_matrix.get(generators[0].name, 1)
        assert [e.design_name for e in evaluations] == [
            e.design_name for e in expected.designs
        ]
        assert [
            [(o.raw_text, o.category) for o in e.outcomes] for e in evaluations
        ] == [
            [(o.raw_text, o.category) for o in e.outcomes] for e in expected.designs
        ]

    def test_streaming_bounded_window(self, generators, campaign_designs, icl_examples):
        """A window of 1 still yields complete, ordered results."""
        with CampaignRuntime(config=_fast_config(), max_inflight=1) as runtime:
            evaluations = runtime.evaluate_stream(
                generators[0], campaign_designs, icl_examples.for_k(1), 1
            )
        assert [e.design_name for e in evaluations] == [d.name for d in campaign_designs]
        assert all(e.outcomes for e in evaluations)

    def test_overlapped_workers_match_inline(
        self, generators, campaign_designs, icl_examples, reference_matrix, tmp_path
    ):
        """The threaded multi-worker path agrees with the inline path exactly."""
        config = PipelineConfig(engine=_FAST_ENGINE, workers=2)
        store = RunStore(tmp_path / "overlap")
        with CampaignRuntime(config=config, store=store) as runtime:
            matrix = runtime.run_campaign(
                generators, (1,), campaign_designs, icl_examples
            )
        assert _matrix_signature(matrix) == _matrix_signature(reference_matrix)
        assert len(store.completed_cells()) == 2 * len(campaign_designs)


class _InterruptingStore(RunStore):
    """A RunStore whose commit log 'crashes' after a fixed number of cells."""

    def __init__(self, root, fail_after: int):
        super().__init__(root)
        self._commits_left = fail_after

    def record_cell(self, model_name, k, design_name, outcomes):
        if self._commits_left == 0:
            # Simulated kill -9 between a cell's verification (verdicts are
            # already in the persistent cache) and its commit marker.
            raise KeyboardInterrupt("simulated crash")
        super().record_cell(model_name, k, design_name, outcomes)
        self._commits_left -= 1


class TestKillAndResume:
    def test_interrupted_campaign_resumes_to_identical_matrix(
        self, tmp_path, knowledge, campaign_designs, icl_examples, reference_matrix
    ):
        run_dir = tmp_path / "run"
        generators = [SimulatedCotsLLM(GPT_4O, knowledge), SimulatedCotsLLM(GPT_35, knowledge)]

        # Phase 1: crash after 3 committed cells (mid-sweep for model 1).
        crashing = _InterruptingStore(run_dir, fail_after=3)
        runtime = CampaignRuntime(config=_fast_config(), store=crashing)
        with pytest.raises(KeyboardInterrupt):
            runtime.run_campaign(generators, (1,), campaign_designs, icl_examples)
        runtime.close()

        committed = RunStore(run_dir).completed_cells()
        assert len(committed) == 3
        # Verdicts of the crashed (uncommitted) cell survived in the cache.
        assert len(RunStore(run_dir).verdict_cache()) > 0

        # Phase 2: fresh process — new store, runtime, service, generators.
        resumed_store = RunStore(run_dir)
        fresh_generators = [
            SimulatedCotsLLM(GPT_4O, knowledge),
            SimulatedCotsLLM(GPT_35, knowledge),
        ]
        with CampaignRuntime(config=_fast_config(), store=resumed_store) as resumed:
            matrix = resumed.run_campaign(
                fresh_generators, (1,), campaign_designs, icl_examples
            )
            stats = resumed.cache.stats()

        # The resumed matrix is identical to an uninterrupted run...
        assert _matrix_signature(matrix) == _matrix_signature(reference_matrix)
        # ...with already-proved verdicts served from the persistent cache.
        assert stats["hits"] > 0

        # Every cell is now committed; a third pass re-runs nothing.
        assert len(resumed_store.completed_cells()) == 2 * len(campaign_designs)

    def test_completed_run_replays_without_generation(
        self, tmp_path, knowledge, campaign_designs, icl_examples, reference_matrix
    ):
        run_dir = tmp_path / "complete"
        generator = SimulatedCotsLLM(GPT_4O, knowledge)
        with CampaignRuntime(config=_fast_config(), store=RunStore(run_dir)) as runtime:
            first = runtime.run_campaign([generator], (1,), campaign_designs, icl_examples)

        class _Exploding(SimulatedCotsLLM):
            def generate(self, prompt, config):
                raise AssertionError("generation must not run for committed cells")

        replayer = _Exploding(GPT_4O, knowledge)
        with CampaignRuntime(config=_fast_config(), store=RunStore(run_dir)) as runtime:
            replayed = runtime.run_campaign([replayer], (1,), campaign_designs, icl_examples)
        assert _matrix_signature(replayed) == _matrix_signature(first)
        assert _matrix_signature(replayed) == {
            key: value
            for key, value in _matrix_signature(reference_matrix).items()
            if key[0] == GPT_4O.name
        }


class TestServiceStoreWiring:
    def test_mismatched_service_and_store_are_rejected(self, tmp_path):
        from repro.core import SchedulerConfig, VerificationService

        store = RunStore(tmp_path / "wiring")
        detached = VerificationService(SchedulerConfig(engine=_FAST_ENGINE))
        with pytest.raises(ValueError, match="verdict cache"):
            CampaignRuntime(config=_fast_config(), service=detached, store=store)

    def test_service_fronted_by_store_cache_is_accepted(self, tmp_path):
        from repro.core import SchedulerConfig, VerificationService

        store = RunStore(tmp_path / "wiring-ok")
        service = VerificationService(
            SchedulerConfig(engine=_FAST_ENGINE), cache=store.verdict_cache()
        )
        runtime = CampaignRuntime(config=_fast_config(), service=service, store=store)
        assert runtime.cache is store.verdict_cache()


class TestManifestGuard:
    def test_changed_campaign_is_rejected(
        self, tmp_path, knowledge, campaign_designs, icl_examples
    ):
        store = RunStore(tmp_path / "guard")
        generator = SimulatedCotsLLM(GPT_4O, knowledge)
        config = _fast_config()
        payload = campaign_config([generator], (1,), campaign_designs, config)
        store.begin_run(payload)

        shrunk = campaign_config([generator], (1,), campaign_designs[:2], config)
        with pytest.raises(ResumeMismatchError):
            RunStore(tmp_path / "guard").begin_run(shrunk)

    def test_worker_count_does_not_change_identity(
        self, knowledge, campaign_designs
    ):
        generator = SimulatedCotsLLM(GPT_4O, knowledge)
        one = campaign_config(
            [generator], (1,), campaign_designs, PipelineConfig(workers=1)
        )
        four = campaign_config(
            [generator], (1,), campaign_designs, PipelineConfig(workers=4)
        )
        assert one == four
