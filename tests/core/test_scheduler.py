"""Tests for the verification scheduler and the verdict cache accounting."""

from __future__ import annotations

import pytest

from repro.core import SchedulerConfig, VerdictCache, VerificationService
from repro.fpv import EngineConfig, FormalEngine, ProofStatus
from repro.fpv.result import ProofResult

_FAST_ENGINE = EngineConfig(
    max_states=1024,
    max_transitions=60_000,
    max_input_bits=8,
    max_state_bits=12,
    max_path_evaluations=60_000,
    fallback_cycles=96,
    fallback_seeds=1,
)


def _proven() -> ProofResult:
    return ProofResult(status=ProofStatus.PROVEN)


class TestVerdictCache:
    def test_miss_is_counted_in_get_even_without_put(self):
        # Regression: misses used to be counted in put(), so a lookup that
        # missed but never stored a verdict drifted the accounting.
        cache = VerdictCache()
        assert cache.get("d", "a == 1") is None
        assert cache.get("d", "a == 1") is None
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 2}

    def test_hits_and_misses_balance_get_calls(self):
        cache = VerdictCache()
        cache.get("d", "x")
        cache.put("d", "x", _proven())
        cache.get("d", "x")
        cache.get("d", "y")
        stats = cache.stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 2}
        assert stats["hits"] + stats["misses"] == 3

    def test_whitespace_normalised_keys(self):
        cache = VerdictCache()
        cache.put("d", "a  ==  1", _proven())
        assert cache.get("d", "a == 1") is not None
        assert len(cache) == 1

    def test_put_does_not_count_a_miss(self):
        cache = VerdictCache()
        cache.put("d", "x", _proven())
        assert cache.stats()["misses"] == 0


@pytest.fixture(scope="module")
def small_jobs(corpus):
    jobs = []
    for name in ("counter", "arb2", "mod10_counter", "updown_counter4"):
        design = corpus.design(name)
        out = design.model.outputs[0]
        mask = design.model.signals[out].mask
        jobs.append(
            (design, [f"({out} <= {mask});", f"({out} == {mask});", "garbage ==>"])
        )
    return jobs


class TestVerificationService:
    def test_matches_direct_engine_batches(self, small_jobs):
        service = VerificationService(SchedulerConfig(engine=_FAST_ENGINE, workers=1))
        results = service.check_many(small_jobs)
        for (design, assertions), verdicts in zip(small_jobs, results):
            expected = FormalEngine(design, _FAST_ENGINE).check_batch(assertions)
            assert [v.status for v in verdicts] == [e.status for e in expected]
            assert [v.complete for v in verdicts] == [e.complete for e in expected]

    def test_parallel_results_deterministic_and_ordered(self, small_jobs):
        serial = VerificationService(SchedulerConfig(engine=_FAST_ENGINE, workers=1))
        expected = serial.check_many(small_jobs)
        with VerificationService(
            SchedulerConfig(engine=_FAST_ENGINE, workers=2)
        ) as parallel:
            got = parallel.check_many(small_jobs)
        assert [[v.status for v in batch] for batch in got] == [
            [v.status for v in batch] for batch in expected
        ]

    def test_cache_fronts_the_engine(self, small_jobs):
        service = VerificationService(SchedulerConfig(engine=_FAST_ENGINE, workers=1))
        first = service.check_many(small_jobs)
        stats_after_first = service.cache.stats()
        second = service.check_many(small_jobs)
        stats_after_second = service.cache.stats()
        assert [[v.status for v in b] for b in first] == [
            [v.status for v in b] for b in second
        ]
        # Second pass resolves everything from the cache: no new entries.
        assert stats_after_second["entries"] == stats_after_first["entries"]
        assert stats_after_second["hits"] > stats_after_first["hits"]

    def test_duplicates_within_a_batch_are_proved_once(self, corpus):
        design = corpus.design("counter")
        service = VerificationService(SchedulerConfig(engine=_FAST_ENGINE, workers=1))
        results = service.check_design(
            design, ["(count <= 15);", "(count   <=   15);", "(count <= 15);"]
        )
        assert len(results) == 3
        assert all(r.status is ProofStatus.PROVEN for r in results)
        assert service.cache.stats()["entries"] == 1

    def test_check_single_assertion(self, corpus):
        design = corpus.design("counter")
        service = VerificationService(SchedulerConfig(engine=_FAST_ENGINE, workers=1))
        result = service.check(design, "(count <= 15);")
        assert result.status is ProofStatus.PROVEN

    def test_close_is_idempotent(self, small_jobs):
        service = VerificationService(SchedulerConfig(engine=_FAST_ENGINE, workers=2))
        service.check_many(small_jobs)
        service.close()
        service.close()
