"""Tests for the run-directory artifact store and persistent verdict cache."""

from __future__ import annotations

import json

import pytest

from repro.core import PersistentVerdictCache, ResumeMismatchError, RunStore, config_hash
from repro.core.metrics import CEX, PASS, AssertionOutcome
from repro.core.store import outcome_from_json, outcome_to_json, proof_from_json, proof_to_json
from repro.fpv.result import Counterexample, ProofResult, ProofStatus, error_result
from repro.sva import AssertionSignature, parse_assertion


def _proven(text="(count <= 15);") -> ProofResult:
    return ProofResult(
        status=ProofStatus.PROVEN,
        assertion=parse_assertion(text),
        design_name="counter",
        engine="explicit-state",
        complete=True,
        states_explored=32,
        depth=4,
    )


def _cex() -> ProofResult:
    return ProofResult(
        status=ProofStatus.CEX,
        assertion=parse_assertion("(en == 1) |-> (count == 0);"),
        design_name="counter",
        counterexample=Counterexample(
            cycles=[{"en": 1, "count": 0}, {"en": 1, "count": 1}],
            trigger_cycle=0,
            failed_term="count == 0",
        ),
        reason="refuted at depth 1",
        engine="explicit-state",
    )


class TestSerialization:
    def test_proof_round_trip_proven(self):
        proof = _proven()
        loaded = proof_from_json(proof_to_json(proof))
        assert loaded.status is ProofStatus.PROVEN
        assert loaded.design_name == "counter"
        assert loaded.complete and loaded.states_explored == 32 and loaded.depth == 4
        assert AssertionSignature.of(loaded.assertion) == AssertionSignature.of(proof.assertion)

    def test_proof_round_trip_counterexample(self):
        loaded = proof_from_json(proof_to_json(_cex()))
        assert loaded.status is ProofStatus.CEX
        assert loaded.counterexample is not None
        assert loaded.counterexample.cycles == [{"en": 1, "count": 0}, {"en": 1, "count": 1}]
        assert loaded.counterexample.failed_term == "count == 0"

    def test_proof_round_trip_error_without_assertion(self):
        proof = error_result("no parse", "counter")
        loaded = proof_from_json(proof_to_json(proof))
        assert loaded.status is ProofStatus.ERROR
        assert loaded.assertion is None
        assert loaded.reason == "no parse"

    def test_outcome_round_trip(self):
        outcome = AssertionOutcome(
            design_name="counter",
            model_name="GPT-4o",
            k=5,
            raw_text="(count <= 15)",
            corrected_text="(count <= 15);",
            category=PASS,
            proof=_proven(),
            correction_applied=True,
        )
        loaded = outcome_from_json(outcome_to_json(outcome))
        assert loaded.design_name == "counter"
        assert loaded.model_name == "GPT-4o"
        assert loaded.k == 5
        assert loaded.category == PASS
        assert loaded.correction_applied
        assert loaded.proof.status is ProofStatus.PROVEN


class TestConfigHash:
    def test_stable_under_key_order(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == config_hash({"b": [2, 3], "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})


class TestPersistentVerdictCache:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        cache = PersistentVerdictCache(path)
        cache.put("counter:abc", "(count <= 15)", _proven())
        assert cache.stats()["entries"] == 1

        reopened = PersistentVerdictCache(path)
        assert reopened.loaded_entries == 1
        hit = reopened.get("counter:abc", "(count <= 15)")
        assert hit is not None and hit.status is ProofStatus.PROVEN
        assert reopened.stats()["hits"] == 1

    def test_normalises_whitespace_like_memory_cache(self, tmp_path):
        cache = PersistentVerdictCache(tmp_path / "v.jsonl")
        cache.put("d", "a   ==  1", _proven())
        reopened = PersistentVerdictCache(tmp_path / "v.jsonl")
        assert reopened.get("d", "a == 1") is not None

    def test_last_write_wins_on_replay(self, tmp_path):
        path = tmp_path / "v.jsonl"
        cache = PersistentVerdictCache(path)
        cache.put("d", "x", _proven())
        cache.put("d", "x", _cex())
        reopened = PersistentVerdictCache(path)
        assert reopened.get("d", "x").status is ProofStatus.CEX
        assert reopened.loaded_entries == 1

    def test_tolerates_torn_trailing_line(self, tmp_path):
        path = tmp_path / "v.jsonl"
        cache = PersistentVerdictCache(path)
        cache.put("d", "x", _proven())
        with path.open("a") as handle:
            handle.write('{"design": "d", "text": "y", "proof"')  # torn write
        reopened = PersistentVerdictCache(path)
        assert reopened.loaded_entries == 1
        assert reopened.get("d", "x") is not None


def _outcomes(design, count, model="M", k=1):
    return [
        AssertionOutcome(
            design_name=design,
            model_name=model,
            k=k,
            raw_text=f"raw {index}",
            corrected_text=f"corrected {index}",
            category=PASS if index % 2 == 0 else CEX,
            proof=_proven() if index % 2 == 0 else _cex(),
        )
        for index in range(count)
    ]


class TestRunStore:
    def test_record_and_load_cell(self, tmp_path):
        store = RunStore(tmp_path)
        store.record_cell("M", 1, "counter", _outcomes("counter", 3))
        assert set(store.completed_cells()) == {("M", 1, "counter")}
        loaded = store.load_cell("M", 1, "counter")
        assert [o.raw_text for o in loaded] == ["raw 0", "raw 1", "raw 2"]
        assert [o.category for o in loaded] == [PASS, CEX, PASS]

    def test_uncommitted_records_are_invisible(self, tmp_path):
        store = RunStore(tmp_path)
        # Simulate a crash between the outcome append and the commit marker.
        shard = store.shard_path("M", 1)
        with shard.open("a") as handle:
            handle.write(
                json.dumps(
                    {
                        "model": "M", "k": 1, "design": "counter",
                        "attempt": "dead-1", "idx": 0,
                        "outcome": outcome_to_json(_outcomes("counter", 1)[0]),
                    }
                )
                + "\n"
            )
        assert store.completed_cells() == {}
        assert store.load_cell("M", 1, "counter") is None

    def test_append_after_torn_tail_keeps_new_records_intact(self, tmp_path):
        store = RunStore(tmp_path)
        store.record_cell("M", 1, "counter", _outcomes("counter", 2))
        store.close()
        # A crash tears the shard mid-record; the next process appends more.
        shard = store.shard_path("M", 1)
        with shard.open("a") as handle:
            handle.write('{"model": "M", "k": 1, "design": "arb2", "att')
        resumed = RunStore(tmp_path)
        resumed.record_cell("M", 1, "arb2", _outcomes("arb2", 2))
        # The torn line is dead, but neither committed cell lost a record.
        assert [o.raw_text for o in resumed.load_cell("M", 1, "counter")] == ["raw 0", "raw 1"]
        assert [o.raw_text for o in resumed.load_cell("M", 1, "arb2")] == ["raw 0", "raw 1"]

    def test_incremental_reads_see_records_from_other_store_instances(self, tmp_path):
        reader = RunStore(tmp_path)
        assert reader.completed_cells() == {}
        writer = RunStore(tmp_path)
        writer.record_cell("M", 1, "counter", _outcomes("counter", 2))
        assert set(reader.completed_cells()) == {("M", 1, "counter")}
        writer.record_cell("M", 1, "arb2", _outcomes("arb2", 1))
        assert len(reader.completed_cells()) == 2
        assert len(reader.load_cell("M", 1, "arb2")) == 1

    def test_recommitted_cell_uses_latest_attempt(self, tmp_path):
        store = RunStore(tmp_path)
        store.record_cell("M", 1, "counter", _outcomes("counter", 2))
        store.record_cell("M", 1, "counter", _outcomes("counter", 3))
        loaded = store.load_cell("M", 1, "counter")
        assert len(loaded) == 3

    def test_load_matrix_reassembles_cells(self, tmp_path):
        store = RunStore(tmp_path)
        store.record_cell("M", 1, "counter", _outcomes("counter", 2))
        store.record_cell("M", 1, "arb2", _outcomes("arb2", 4))
        store.record_cell("M", 5, "counter", _outcomes("counter", 1, k=5))
        matrix = store.load_matrix()
        assert matrix.model_names == ["M"]
        assert matrix.k_values == [1, 5]
        assert matrix.get("M", 1).num_assertions == 6
        assert matrix.get("M", 5).num_assertions == 1

    def test_manifest_lifecycle_and_mismatch(self, tmp_path):
        store = RunStore(tmp_path)
        config = {"models": ["M"], "k_values": [1]}
        manifest = store.begin_run(config)
        assert manifest["status"] == "running"
        store.finish_run()
        assert store.read_manifest()["status"] == "complete"

        # Same config resumes; a different one is refused.
        again = RunStore(tmp_path)
        again.begin_run(config, resume_only=True)
        with pytest.raises(ResumeMismatchError):
            again.begin_run({"models": ["other"], "k_values": [1]})

    def test_resume_only_requires_manifest(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ResumeMismatchError):
            store.begin_run({"a": 1}, resume_only=True)

    def test_describe_summarises_run(self, tmp_path):
        store = RunStore(tmp_path)
        store.begin_run({"a": 1})
        store.record_cell("M", 1, "counter", _outcomes("counter", 2))
        summary = store.describe()
        assert summary["status"] == "running"
        assert summary["completed_cells"] == 1
