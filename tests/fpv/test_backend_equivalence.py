"""Three-backend equivalence: vectorized vs compiled vs interpreted.

The vectorized kernel must be semantically invisible: identical reachable
state sets (same order, same transition counts), identical settled
environments, and identical FPV verdicts — status, completeness, engine, and
counterexample cycles — on every corpus design.  The hypothesis suite
hammers the settle/step image computation on a purpose-built design whose
signal widths sit on the masking edges (33-bit registers, variable shifts,
modulo/division by zero).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpv import EngineConfig, FormalEngine, TransitionSystem, enumerate_reachable
from repro.hdl import Design
from repro.sim import BACKENDS

_EDGE_SOURCE = """
module edgewidths(clk, rst, a, sh, q33, ymod, ydiv, yshl, yshr, ysra, ybit);
  input clk, rst;
  input [4:0] a;
  input [5:0] sh;
  output [32:0] q33;
  output [4:0] ymod, ydiv;
  output [32:0] yshl;
  output [4:0] yshr, ysra;
  output ybit;
  reg [32:0] q33;
  assign ymod = a % sh[2:0];
  assign ydiv = a / sh[2:0];
  assign yshl = q33 << sh;
  assign yshr = a >> sh;
  assign ysra = a >>> sh[1:0];
  assign ybit = q33[sh];
  always @(posedge clk or posedge rst)
    if (rst)
      q33 <= 0;
    else
      q33 <= q33 + {a, sh, a, sh, a, sh} - a;
endmodule
"""


@pytest.fixture(scope="module")
def edge_design():
    return Design.from_source(_EDGE_SOURCE, name="edgewidths")


@pytest.fixture(scope="module")
def edge_systems(edge_design):
    return {backend: TransitionSystem(edge_design, backend=backend) for backend in BACKENDS}


class TestEdgeWidthImages:
    def test_kernel_lowers(self, edge_systems):
        assert edge_systems["vectorized"].vector_kernel() is not None

    @settings(max_examples=150, deadline=None)
    @given(
        state=st.integers(0, (1 << 33) - 1),
        a=st.integers(0, 31),
        sh=st.integers(0, 63),
    )
    def test_settle_and_step_agree(self, edge_systems, state, a, sh):
        inputs = {"a": a, "sh": sh}
        reference = None
        for backend in BACKENDS:
            system = edge_systems[backend]
            env = system.settle((state,), inputs)
            step = system.step((state,), inputs)
            if reference is None:
                reference = (env, step.next_state)
            else:
                assert env == reference[0], backend
                assert step.next_state == reference[1], backend
        # the kernel's batched image must match the scalar images lane-wise
        kernel = edge_systems["vectorized"].vector_kernel()
        import numpy as np

        env_cols, next_cols = kernel.step_batch(
            {"q33": np.asarray([state], dtype=np.int64)},
            {"a": np.asarray([a], dtype=np.int64), "sh": np.asarray([sh], dtype=np.int64)},
            1,
        )
        assert kernel.env_row(env_cols, 0) == reference[0]
        assert int(next_cols["q33"][0]) == reference[1][0]


def _verdict_key(result):
    cex = None
    if result.counterexample is not None:
        cex = (
            result.counterexample.trigger_cycle,
            result.counterexample.failed_term,
            tuple(tuple(sorted(cycle.items())) for cycle in result.counterexample.cycles),
        )
    return (result.status, result.complete, result.engine, result.states_explored, cex)


def _assertions(design, count=3):
    model = design.model
    out = (model.outputs or list(model.signals))[0]
    mask = model.signals[out].mask
    inputs = model.non_clock_inputs
    texts = []
    for j in range(count):
        bound = max(0, mask - (j % max(mask, 1)))
        if not inputs:
            texts.append(f"({out} <= {bound});")
            continue
        inp = inputs[j % len(inputs)]
        if j % 3 == 0:
            texts.append(f"({inp} >= 0) |-> ({out} <= {bound});")
        elif j % 3 == 1:
            texts.append(f"({inp} == 0) |=> ({out} <= {bound});")
        else:
            texts.append(f"({inp} == 0) ##1 ({inp} == 0) |=> ({out} <= {bound});")
    return texts


_CORPUS_ENGINE_KWARGS = dict(
    max_states=1024,
    max_transitions=60_000,
    max_path_evaluations=60_000,
    fallback_cycles=64,
    fallback_seeds=2,
)


class TestCorpusVerdictEquivalence:
    def test_all_backends_agree_on_every_design(self, corpus):
        """Whole-corpus sweep: one verdict triple per design × assertion."""
        disagreements = []
        for design in corpus.all_designs():
            batch = _assertions(design)
            per_backend = {}
            for backend in BACKENDS:
                engine = FormalEngine(
                    design, EngineConfig(backend=backend, **_CORPUS_ENGINE_KWARGS)
                )
                per_backend[backend] = [
                    _verdict_key(r) for r in engine.check_batch(batch)
                ]
            for backend in ("compiled", "vectorized"):
                if per_backend[backend] != per_backend["interpreted"]:
                    disagreements.append((design.name, backend))
        assert not disagreements, disagreements

    @pytest.mark.parametrize(
        "name",
        ["arb2", "counter", "traffic_light", "watchdog4", "seq_detect_1011", "lfsr8"],
    )
    def test_reachability_identical(self, corpus, name):
        design = corpus.design(name)
        reference = None
        for backend in BACKENDS:
            system = TransitionSystem(design, max_input_bits=12, backend=backend)
            if not system.can_enumerate_inputs:
                continue
            result = enumerate_reachable(system, max_states=2048, max_transitions=60_000)
            key = (
                result.states,
                result.complete,
                result.frontier_exhausted,
                result.transitions_explored,
            )
            if reference is None:
                reference = key
            else:
                assert key == reference, (name, backend)

    @pytest.mark.parametrize("limit", [1, 2, 5, 6, 7, 9, 17, 33, 64, 1000])
    def test_budget_boundaries_identical(self, corpus, limit):
        """Tight path-evaluation budgets cut off at the same pair everywhere.

        Regression: the vectorized depth-0 walk must refute a violation that
        falls inside the remaining budget at a state even when the rest of
        that state's input row would have exhausted it (the scalar sweep
        decides the obligation before the next input is charged).
        """
        design = corpus.design("arb2")
        batch = [
            "(req1 == 1 && req2 == 0) |-> (gnt1 == 1);",
            "(req1 == 1) |-> (gnt2 == 1);",  # refutable at depth 0
            "(req2 == 0 && gnt_ == 1) ##1 (req1 == 1) |=> (gnt1 == 1);",
        ]
        per_backend = {}
        for backend in BACKENDS:
            engine = FormalEngine(
                design,
                EngineConfig(
                    backend=backend,
                    max_path_evaluations=limit,
                    fallback_cycles=48,
                    fallback_seeds=1,
                ),
            )
            per_backend[backend] = [_verdict_key(r) for r in engine.check_batch(batch)]
        assert per_backend["compiled"] == per_backend["interpreted"], limit
        assert per_backend["vectorized"] == per_backend["interpreted"], limit

    def test_truncated_reachability_identical(self, corpus):
        """Caps that bite mid-walk truncate at the same transition."""
        design = corpus.design("watchdog4")
        keys = []
        for backend in BACKENDS:
            system = TransitionSystem(design, max_input_bits=12, backend=backend)
            for caps in ((7, 10_000), (2048, 33), (5, 41)):
                result = enumerate_reachable(
                    system, max_states=caps[0], max_transitions=caps[1]
                )
                keys.append(
                    (
                        backend,
                        caps,
                        tuple(result.states),
                        result.complete,
                        result.transitions_explored,
                    )
                )
        by_caps = {}
        for backend, caps, *rest in keys:
            by_caps.setdefault(caps, set()).add(tuple(rest))
        for caps, variants in by_caps.items():
            assert len(variants) == 1, (caps, variants)
