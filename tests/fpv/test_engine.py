"""Unit tests for the formal property verification engine."""

import pytest

from repro.fpv import (
    EngineConfig,
    FormalEngine,
    ProofStatus,
    TransitionSystem,
    check_assertion,
    enumerate_reachable,
)


@pytest.fixture(scope="module")
def arb2_engine(arb2_design):
    return FormalEngine(arb2_design)


@pytest.fixture(scope="module")
def counter_engine(counter_design):
    return FormalEngine(counter_design)


class TestVerdicts:
    def test_proven_assertion(self, arb2_engine):
        result = arb2_engine.check("(req1 == 1 && req2 == 0) |-> (gnt1 == 1);")
        assert result.status is ProofStatus.PROVEN
        assert result.complete
        assert result.is_pass

    def test_cex_assertion_with_witness(self, arb2_engine):
        result = arb2_engine.check(
            "(req2 == 0 && gnt_ == 1) ##1 (req1 == 1) |=> (gnt1 == 1);"
        )
        assert result.status is ProofStatus.CEX
        assert result.counterexample is not None
        assert result.counterexample.length >= 3
        assert "gnt1" in result.counterexample.cycles[0]

    def test_vacuous_assertion(self, arb2_engine):
        result = arb2_engine.check("(gnt_ == 3) |-> (gnt1 == 1);")
        assert result.status is ProofStatus.VACUOUS
        assert result.is_pass

    def test_unknown_signal_is_error(self, arb2_engine):
        result = arb2_engine.check("(phantom == 1) |-> (gnt1 == 1);")
        assert result.status is ProofStatus.ERROR

    def test_syntax_error_is_error(self, arb2_engine):
        result = arb2_engine.check("not really sva ===>")
        assert result.status is ProofStatus.ERROR

    def test_counter_invariant_proven(self, counter_engine):
        result = counter_engine.check("(count <= 15)")
        assert result.is_pass

    def test_counter_increment_property(self, counter_engine):
        result = counter_engine.check("(en == 1 && count == 3) |=> (count == 4);")
        assert result.status is ProofStatus.CEX or result.status is ProofStatus.PROVEN
        # with async reset sampled as an input, reset can pre-empt the increment,
        # so the engine must find the counterexample where rst is asserted
        assert result.status is ProofStatus.CEX

    def test_counter_increment_with_reset_guard(self, counter_engine):
        result = counter_engine.check(
            "(rst == 0 && en == 1 && count == 3) ##1 (rst == 0) |-> (count == 4);"
        )
        assert result.status is ProofStatus.PROVEN

    def test_combinational_design_checks(self, adder_design):
        result = check_assertion(adder_design, "(a == 3 && b == 2) |-> (sum == 5);")
        assert result.status is ProofStatus.PROVEN
        result = check_assertion(adder_design, "(a == 15 && b == 1) |-> (carry == 0);")
        assert result.status is ProofStatus.CEX

    def test_check_all_batch(self, arb2_engine):
        results = arb2_engine.check_all(
            ["(req1 == 1 && req2 == 0) |-> (gnt1 == 1);", "garbage in"]
        )
        assert [r.status for r in results] == [ProofStatus.PROVEN, ProofStatus.ERROR]

    def test_summary_text(self, arb2_engine):
        result = arb2_engine.check("(req1 == 1 && req2 == 0) |-> (gnt1 == 1);")
        assert "PROVEN" in result.summary()


class TestSimulationFallback:
    def test_large_state_design_uses_simulation(self, corpus):
        design = corpus.design("shift_reg32")
        engine = FormalEngine(
            design, EngineConfig(max_state_bits=8, fallback_cycles=128, fallback_seeds=1)
        )
        result = engine.check("(shift_en == 0) |=> (stages[0] == stages[0]);")
        assert result.engine == "simulation"
        assert result.is_pass
        assert not result.complete

    def test_simulation_can_find_cex(self, corpus):
        design = corpus.design("shift_reg32")
        engine = FormalEngine(
            design, EngineConfig(max_state_bits=8, fallback_cycles=256, fallback_seeds=2)
        )
        result = engine.check("(shift_en == 1) |=> (stages[0] == 0);")
        assert result.status is ProofStatus.CEX


class TestTransitionSystem:
    def test_reachability_of_counter(self, counter_design):
        system = TransitionSystem(counter_design)
        reachability = enumerate_reachable(system)
        assert reachability.complete
        assert reachability.count == 16

    def test_initial_state_uses_initial_values(self, counter_design):
        system = TransitionSystem(counter_design)
        assert system.initial_state() == (0,)

    def test_step_advances_state(self, counter_design):
        system = TransitionSystem(counter_design)
        step = system.step((3,), {"rst": 0, "en": 1})
        assert step.next_state == (4,)
        assert step.env["count"] == 3

    def test_step_cache_consistency(self, counter_design):
        system = TransitionSystem(counter_design)
        first = system.step((2,), {"rst": 0, "en": 1})
        second = system.step((2,), {"rst": 0, "en": 1})
        assert first.next_state == second.next_state
        assert first.env == second.env

    def test_input_enumeration_size(self, counter_design):
        system = TransitionSystem(counter_design)
        assert system.input_space_size == 4
        assert len(list(system.enumerate_inputs())) == 4

    def test_verdict_counterexample_format(self, arb2_engine):
        result = arb2_engine.check(
            "(req2 == 0 && gnt_ == 1) ##1 (req1 == 1) |=> (gnt1 == 1);"
        )
        table = result.counterexample.format(["req1", "req2", "gnt1"])
        assert "req1" in table and "cycle" in table
