"""Batched FPV: ``check_batch`` must match per-assertion ``check`` exactly.

The batched engine shares one state-space sweep (or one trace set) per
design across all pending assertions; these tests pin down that the sharing
is semantically invisible — status, completeness, counterexample trigger
cycle, and witness cycles are identical to checking each assertion alone —
across the full ``bench/designs`` corpus.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.fpv import EngineConfig, FormalEngine, ProofStatus
from repro.hdl.design import Design
from repro.sim import BACKENDS, COMPILED, INTERPRETED

#: Small caps keep the corpus-wide sweep fast while still exercising both
#: proof strategies (explicit-state and simulation falsification).
_FAST = EngineConfig(
    max_states=1024,
    max_transitions=60_000,
    max_input_bits=8,
    max_state_bits=12,
    max_path_evaluations=60_000,
    fallback_cycles=96,
    fallback_seeds=1,
)


def _template_assertions(design: Design) -> List[str]:
    """A small assertion mix per design: invariants, implications, likely CEXs."""
    model = design.model
    outputs = model.outputs or list(model.signals)
    out = outputs[0]
    mask = model.signals[out].mask
    assertions = [f"({out} <= {mask});", f"({out} == {mask});"]
    if model.non_clock_inputs:
        inp = model.non_clock_inputs[0]
        assertions += [
            f"({inp} == 0) |=> ({out} >= 0);",
            f"({inp} == 0) |-> ({out} == {mask});",
            f"({inp} == 0) ##1 ({inp} == 0) |=> ({out} <= {mask});",
        ]
    return assertions


def _assert_equivalent(batch, solo, context: str) -> None:
    assert len(batch) == len(solo)
    for got, expected in zip(batch, solo):
        assert got.status is expected.status, context
        assert got.complete == expected.complete, context
        assert got.engine == expected.engine, context
        assert got.depth == expected.depth, context
        if expected.counterexample is None:
            assert got.counterexample is None, context
        else:
            assert got.counterexample is not None, context
            assert (
                got.counterexample.trigger_cycle
                == expected.counterexample.trigger_cycle
            ), context
            assert got.counterexample.failed_term == expected.counterexample.failed_term, context
            assert got.counterexample.cycles == expected.counterexample.cycles, context


class TestBatchEquivalence:
    def test_full_corpus_batch_matches_solo(self, corpus):
        """Acceptance: identical verdicts across the full bench/designs corpus."""
        mismatched = []
        for design in corpus.all_designs():
            assertions = _template_assertions(design)
            batch = FormalEngine(design, _FAST).check_batch(assertions)
            solo_engine = FormalEngine(design, _FAST)
            solo = [solo_engine.check(assertion) for assertion in assertions]
            try:
                _assert_equivalent(batch, solo, design.name)
            except AssertionError:
                mismatched.append(design.name)
        assert not mismatched, f"batch/solo verdicts diverge on: {mismatched}"

    def test_batch_shares_one_sweep_with_mixed_verdicts(self, arb2_design):
        engine = FormalEngine(arb2_design)
        batch = engine.check_batch(
            [
                "(req1 == 1 && req2 == 0) |-> (gnt1 == 1);",      # proven
                "(gnt_ == 3) |-> (gnt1 == 1);",                   # vacuous
                "(req2 == 0 && gnt_ == 1) ##1 (req1 == 1) |=> (gnt1 == 1);",  # cex
                "not really sva ===>",                            # syntax error
                "(phantom == 1) |-> (gnt1 == 1);",                # bind error
            ]
        )
        assert [r.status for r in batch] == [
            ProofStatus.PROVEN,
            ProofStatus.VACUOUS,
            ProofStatus.CEX,
            ProofStatus.ERROR,
            ProofStatus.ERROR,
        ]
        assert batch[2].counterexample is not None
        assert batch[2].counterexample.trigger_cycle == 0
        assert batch[2].counterexample.length >= 3

    def test_batch_witness_identical_to_solo_witness(self, arb2_design):
        text = "(req2 == 0 && gnt_ == 1) ##1 (req1 == 1) |=> (gnt1 == 1);"
        batch = FormalEngine(arb2_design).check_batch([text, "(req1 == 0) |-> (gnt2 == 0);"])
        solo = FormalEngine(arb2_design).check(text)
        assert batch[0].status is ProofStatus.CEX
        assert batch[0].counterexample.cycles == solo.counterexample.cycles
        assert batch[0].counterexample.failed_term == solo.counterexample.failed_term

    def test_budget_exhaustion_falls_back_per_assertion(self, counter_design):
        config = EngineConfig(max_path_evaluations=10, fallback_cycles=64, fallback_seeds=1)
        engine = FormalEngine(counter_design, config)
        batch = engine.check_batch(
            ["(count <= 15);", "(en == 1 && count == 3) |=> (count == 4);"]
        )
        solo_engine = FormalEngine(counter_design, config)
        solo = [
            solo_engine.check("(count <= 15);"),
            solo_engine.check("(en == 1 && count == 3) |=> (count == 4);"),
        ]
        for got, expected in zip(batch, solo):
            assert got.engine == "simulation"
            assert not got.complete
            assert got.status is expected.status

    def test_empty_batch(self, arb2_design):
        assert FormalEngine(arb2_design).check_batch([]) == []

    def test_check_is_a_batch_of_one(self, arb2_design):
        engine = FormalEngine(arb2_design)
        result = engine.check("(req1 == 1 && req2 == 0) |-> (gnt1 == 1);")
        assert result.status is ProofStatus.PROVEN
        assert result.complete


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", ["counter", "arb2", "mod10_counter", "alu4"])
    def test_interpreted_and_compiled_engines_agree(self, corpus, name):
        design = corpus.design(name)
        assertions = _template_assertions(design)
        compiled = FormalEngine(
            design, EngineConfig(backend=COMPILED, fallback_cycles=96, fallback_seeds=1)
        ).check_batch(assertions)
        interpreted = FormalEngine(
            design, EngineConfig(backend=INTERPRETED, fallback_cycles=96, fallback_seeds=1)
        ).check_batch(assertions)
        _assert_equivalent(compiled, interpreted, name)

    def test_engine_reports_backend(self, arb2_design):
        assert FormalEngine(arb2_design, EngineConfig(backend=INTERPRETED)).backend == INTERPRETED
        assert FormalEngine(arb2_design).backend in BACKENDS
