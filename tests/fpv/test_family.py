"""Family-batched verification is bit-identical to the per-mutant path.

``check_family`` must be semantically invisible: for every mutant of every
design, the family sweep's :class:`ProofResult`s — status, reason, engine,
completeness, explored-state counts, and counterexample cycles — equal what
a standalone :class:`FormalEngine` produces for that mutant alone, and the
delta-reachability walk reproduces the mutant's own BFS exactly.  Families
that cannot ride the kernel (compiled backend, foreign members) must fall
back without changing a single verdict.
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import get_corpus
from repro.fpv.engine import (
    EngineConfig,
    FormalEngine,
    ReachabilityCache,
    reachability_key,
)
from repro.fpv.incremental import FamilyStats, check_family
from repro.fpv.transition import TransitionSystem, enumerate_reachable
from repro.hdl.design import Design
from repro.mining import mine_verified_assertions
from repro.mutate.operators import enumerate_mutants
from repro.mutate.semantic import semantic_difference

_ENGINE = EngineConfig(
    max_states=2048,
    max_transitions=120_000,
    max_input_bits=10,
    max_state_bits=14,
    max_path_evaluations=120_000,
    fallback_cycles=128,
    fallback_seeds=2,
    backend="vectorized",
)

_DESIGN_NAMES = [
    "d_flip_flop",
    "counter",
    "updown_counter4",
    "mod6_counter",
    "seq_detect_110",
    "gray_counter4",
]


def _proof_key(proof):
    cex = None
    if proof.counterexample is not None:
        cex = (
            tuple(tuple(sorted(cycle.items())) for cycle in proof.counterexample.cycles),
            proof.counterexample.trigger_cycle,
            proof.counterexample.failed_term,
        )
    return (
        proof.status,
        proof.design_name,
        proof.reason,
        proof.engine,
        proof.complete,
        proof.states_explored,
        proof.depth,
        cex,
    )


@pytest.fixture(scope="module")
def corpus():
    return get_corpus("assertionbench-mutation")


@pytest.fixture(scope="module")
def families(corpus):
    built = []
    for name in _DESIGN_NAMES:
        design = corpus.design(name)
        mined = mine_verified_assertions(design)
        texts = [assertion.to_sva(include_assert=True) for assertion in mined[:5]]
        mutants, _ = enumerate_mutants(design, limit=8)
        if texts and mutants:
            built.append((design, mutants, texts))
    assert built, "corpus produced no verifiable families"
    return built


def test_family_verdicts_bit_identical_over_corpus(families):
    compared = 0
    for design, mutants, texts in families:
        cache = ReachabilityCache()
        family = check_family(
            design,
            [mutant.design for mutant in mutants],
            texts,
            _ENGINE,
            cache,
            witnesses=[mutant.witness for mutant in mutants],
            witness_screen=False,
        )
        for mutant, verdicts in zip(mutants, family):
            solo = FormalEngine(mutant.design, _ENGINE).check_batch(texts)
            for family_proof, solo_proof in zip(verdicts, solo):
                assert _proof_key(family_proof) == _proof_key(solo_proof)
                compared += 1
    assert compared > 50


def test_delta_reachability_matches_per_mutant_bfs(families):
    for design, mutants, texts in families:
        cache = ReachabilityCache()
        check_family(
            design,
            [mutant.design for mutant in mutants],
            texts,
            _ENGINE,
            cache,
            witness_screen=False,
        )
        entries = cache.entries()
        checked = 0
        for mutant in mutants:
            key = reachability_key(mutant.design, _ENGINE)
            if key not in entries:
                continue  # simulation-only member: no BFS on either path
            system = TransitionSystem(
                mutant.design, max_input_bits=_ENGINE.max_input_bits, backend="compiled"
            )
            scalar = enumerate_reachable(
                system,
                max_states=_ENGINE.max_states,
                max_transitions=_ENGINE.max_transitions,
            )
            delta = entries[key]
            assert delta.states == scalar.states
            assert delta.complete == scalar.complete
            assert delta.frontier_exhausted == scalar.frontier_exhausted
            assert delta.transitions_explored == scalar.transitions_explored
            checked += 1
        assert checked


def test_compiled_backend_family_falls_back_identically(families):
    design, mutants, texts = families[0]
    compiled = EngineConfig(**{**vars(_ENGINE), "backend": "compiled"})
    stats = FamilyStats()
    fallback = check_family(
        design,
        [mutant.design for mutant in mutants],
        texts,
        compiled,
        witness_screen=False,
        stats=stats,
    )
    assert stats.fallback_members == len(mutants)
    vectorized = check_family(
        design,
        [mutant.design for mutant in mutants],
        texts,
        _ENGINE,
        witness_screen=False,
    )
    for fallback_verdicts, vector_verdicts in zip(fallback, vectorized):
        for fallback_proof, vector_proof in zip(fallback_verdicts, vector_verdicts):
            assert _proof_key(fallback_proof) == _proof_key(vector_proof)


def test_foreign_member_rejected_and_checked_by_engine(families, corpus):
    design, mutants, texts = families[0]
    foreign = corpus.design("mod10_counter")
    assert foreign.name != design.name
    stats = FamilyStats()
    family = check_family(
        design,
        [mutants[0].design, foreign],
        texts,
        _ENGINE,
        witness_screen=False,
        stats=stats,
    )
    assert stats.fallback_members == 1
    solo = FormalEngine(foreign, _ENGINE).check_batch(texts)
    for family_proof, solo_proof in zip(family[1], solo):
        assert _proof_key(family_proof) == _proof_key(solo_proof)


# ---------------------------------------------------------------------------
# The witness pre-screen
# ---------------------------------------------------------------------------

_BIG_COUNTER = """
module bigcnt(clk, rst, en, ok);
  input clk, rst, en;
  output ok;
  reg [10:0] count;
  assign ok = count < 2048;
  always @(posedge clk or posedge rst)
    if (rst)
      count <= 0;
    else if (en)
      count <= count + 1;
endmodule
"""

_SCREEN_ENGINE = EngineConfig(
    max_states=4096,
    max_transitions=200_000,
    max_input_bits=4,
    max_state_bits=12,
    max_path_evaluations=120_000,
    fallback_cycles=128,
    fallback_seeds=2,
    backend="vectorized",
)


def test_witness_screen_harvests_kill_with_identical_outcome():
    golden = Design.from_source(_BIG_COUNTER, name="bigcnt")
    from repro.mutate.operators import apply_mutation, mutation_sites

    site = next(
        site
        for site in mutation_sites(golden, ["stuck-driver"])
        if "stuck-at-0" in site.description and "ok" in site.description
    )
    mutant = apply_mutation(golden, site.operator, site.index)
    witness = semantic_difference(golden, mutant)
    assert witness is not None and witness.method == "simulation"

    text = "assert property (@(posedge clk) (en == 1) |=> (ok == 1));"
    stats = FamilyStats()
    screened = check_family(
        golden, [mutant], [text], _SCREEN_ENGINE,
        witnesses=[witness], witness_screen=True, stats=stats,
    )[0][0]
    assert stats.screen_kills == 1
    assert screened.engine == "witness-screen"

    solo = FormalEngine(mutant, _SCREEN_ENGINE).check_batch([text])[0]
    # The harvested kill matches the canonical verdict in everything the
    # mutation stage records; only the CEX representation reveals the
    # shortcut (trace window vs explicit-state path).
    assert (screened.status, screened.complete) == (solo.status, solo.complete)
    assert solo.engine == "explicit-state"

    unscreened = check_family(
        golden, [mutant], [text], _SCREEN_ENGINE,
        witnesses=[witness], witness_screen=False,
    )[0][0]
    assert _proof_key(unscreened) == _proof_key(solo)
