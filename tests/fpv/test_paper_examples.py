"""Reproduction of the paper's Section II worked example (E12 in DESIGN.md).

The paper discharges two assertions on the 2-port arbiter of Figure 1 with
JasperGold: P1 is valid, P2 produces a counterexample.  Our FPV engine must
reach the same verdicts on the corpus' (corrected) arb2 design.
"""

from repro.fpv import FormalEngine, ProofStatus

#: P1 : G((req1 == 1 ∧ req2 == 0) → (gnt1 == 1))
P1 = "(req1 == 1 && req2 == 0) |-> (gnt1 == 1);"

#: P2 : G((req2 == 0 ∧ gnt == 1) ∧ X(req1 == 1) ⇒ (gnt1 == 1))
P2 = "(req2 == 0 && gnt_ == 1) ##1 (req1 == 1) |=> (gnt1 == 1);"


class TestPaperArbiterExample:
    def test_p1_is_valid(self, corpus):
        engine = FormalEngine(corpus.design("arb2"))
        result = engine.check(P1)
        assert result.status is ProofStatus.PROVEN
        assert result.complete

    def test_p2_produces_counterexample(self, corpus):
        engine = FormalEngine(corpus.design("arb2"))
        result = engine.check(P2)
        assert result.status is ProofStatus.CEX
        cex = result.counterexample
        assert cex is not None
        # the witness must actually satisfy the antecedent and violate the consequent
        assert cex.cycles[0]["req2"] == 0 and cex.cycles[0]["gnt_"] == 1
        assert cex.cycles[1]["req1"] == 1
        assert cex.cycles[2]["gnt1"] == 0

    def test_p2_overlapped_form_matches_non_overlapped(self, corpus):
        engine = FormalEngine(corpus.design("arb2"))
        overlapped = "(req2 == 0 && gnt_ == 1) ##1 (req1 == 1) |-> ##1 (gnt1 == 1);"
        assert engine.check(overlapped).status is engine.check(P2).status

    def test_figure2_all_four_verdicts_reachable(self, corpus):
        """The engine can produce every verdict of the paper's Figure 2."""
        engine = FormalEngine(corpus.design("arb2"))
        assert engine.check(P1).status is ProofStatus.PROVEN
        assert engine.check(P2).status is ProofStatus.CEX
        assert engine.check("(gnt_ == 3) |-> (gnt1 == 1);").status is ProofStatus.VACUOUS
        assert engine.check("(bogus == 1) |-> (gnt1 == 1);").status is ProofStatus.ERROR
