"""Unit tests for assertion checking over simulation traces."""

import pytest

from repro.fpv import TraceChecker, check_on_trace
from repro.sim import Simulator, Trace
from repro.sva import parse_assertion


@pytest.fixture(scope="module")
def arb2_trace(arb2_design):
    return Simulator(arb2_design).run(cycles=300, seed=5)


class TestTraceChecker:
    def test_proven_style_assertion_holds(self, arb2_design, arb2_trace):
        checker = TraceChecker(arb2_design.model)
        assertion = parse_assertion("(req1 == 1 && req2 == 0) |-> (gnt1 == 1);")
        result = checker.check(assertion, arb2_trace)
        assert result.holds
        assert result.triggers > 0
        assert not result.vacuous

    def test_failing_assertion_reports_cycles(self, arb2_design, arb2_trace):
        checker = TraceChecker(arb2_design.model)
        assertion = parse_assertion("(req1 == 1) |-> (gnt2 == 1);")
        result = checker.check(assertion, arb2_trace)
        assert result.violations > 0
        assert result.first_violation is not None
        assert len(result.failed_terms) == result.violations

    def test_vacuous_assertion_detected(self, arb2_design, arb2_trace):
        checker = TraceChecker(arb2_design.model)
        assertion = parse_assertion("(gnt_ == 3) |-> (gnt1 == 1);")
        result = checker.check(assertion, arb2_trace)
        assert result.vacuous
        assert result.holds

    def test_temporal_assertion_attempt_window(self, arb2_design):
        trace = Trace(signals=list(arb2_design.model.signals))
        base = {name: 0 for name in arb2_design.model.signals}
        for req1 in (1, 1, 0, 0):
            row = dict(base)
            row["req1"] = req1
            trace.append(row)
        checker = TraceChecker(arb2_design.model)
        assertion = parse_assertion("(req1 == 1) ##1 (req1 == 1) |=> (gnt1 == 0);")
        result = checker.check(assertion, trace)
        # only start cycles 0..(len-depth-1) are attempted
        assert result.attempts == len(trace) - assertion.temporal_depth
        assert result.triggers == 1

    def test_disable_iff_suppresses_attempts(self, arb2_design, arb2_trace):
        checker = TraceChecker(arb2_design.model)
        plain = parse_assertion("(req1 == 1) |-> (gnt1 == 1);")
        disabled = parse_assertion("disable iff (req1) (req1 == 1) |-> (gnt1 == 1);")
        assert checker.check(disabled, arb2_trace).triggers == 0
        assert checker.check(plain, arb2_trace).triggers > 0

    def test_check_on_trace_wrapper(self, arb2_design, arb2_trace):
        assertion = parse_assertion("(req2 == 1 && req1 == 0) |-> (gnt2 == 1);")
        result = check_on_trace(assertion, arb2_trace, arb2_design.model)
        assert result.holds

    def test_holds_on_helper(self, arb2_design, arb2_trace):
        checker = TraceChecker(arb2_design.model)
        assert checker.holds_on(
            parse_assertion("(req1 == 0 && req2 == 0) |-> (gnt1 == 0);"), arb2_trace
        )
