"""Step-cache projection/eviction and the precomputed input grid."""

from __future__ import annotations

from repro.fpv import TransitionSystem


class TestInputGrid:
    def test_grid_computed_once_and_ordered(self, counter_design):
        system = TransitionSystem(counter_design)
        grid = system.input_grid
        assert grid is system.input_grid  # cached instance
        # itertools.product order: last input varies fastest
        assert len(grid) == system.input_space_size
        assert grid[0] == tuple(0 for _ in system.input_names)

    def test_enumerate_inputs_reuses_shared_dicts(self, counter_design):
        system = TransitionSystem(counter_design)
        first = list(system.enumerate_inputs())
        second = list(system.enumerate_inputs())
        assert first == second
        assert all(a is b for a, b in zip(first, second))  # shared, not rebuilt

    def test_grid_matches_legacy_enumeration(self, counter_design):
        system = TransitionSystem(counter_design)
        names = system.input_names
        from_grid = [dict(zip(names, combo)) for combo in system.input_grid]
        assert from_grid == list(system.enumerate_inputs())


class TestStepCacheProjection:
    def test_unobserved_step_returns_full_env(self, counter_design):
        system = TransitionSystem(counter_design)
        step = system.step((3,), {"rst": 0, "en": 1})
        assert set(step.env) == set(counter_design.model.signals)

    def test_observed_step_projects_env(self, counter_design):
        system = TransitionSystem(counter_design)
        system.observe({"count"})
        step = system.step((3,), {"rst": 0, "en": 1})
        expected = {"count"} | set(system.state_names) | set(system.input_names)
        assert set(step.env) == expected & set(counter_design.model.signals)
        # hit path returns the same projection
        again = system.step((3,), {"rst": 0, "en": 1})
        assert again.env == step.env
        assert again.next_state == step.next_state

    def test_widening_observation_invalidates_entries(self, counter_design):
        system = TransitionSystem(counter_design)
        system.observe({"count"})
        system.step((1,), {"rst": 0, "en": 1})
        assert system.step_cache_info()["entries"] == 1
        system.observe({"count", "clk"})
        assert system.step_cache_info()["entries"] == 0
        step = system.step((1,), {"rst": 0, "en": 1})
        assert "clk" in step.env

    def test_narrower_observation_is_a_noop(self, counter_design):
        system = TransitionSystem(counter_design)
        system.observe({"count", "clk"})
        system.step((1,), {"rst": 0, "en": 1})
        system.observe({"count"})  # subset: entries survive
        assert system.step_cache_info()["entries"] == 1


class TestStepCacheEviction:
    def test_full_cache_evicts_oldest_fraction_not_everything(self, counter_design):
        system = TransitionSystem(counter_design)
        system._step_cache_limit = 16
        # fill the cache with distinct transitions
        for state in range(16):
            system.step((state,), {"rst": 0, "en": 1})
        info = system.step_cache_info()
        assert info["entries"] == 16
        # one more insert evicts a bounded slice, keeping the working set
        system.step((0,), {"rst": 1, "en": 0})
        entries = system.step_cache_info()["entries"]
        assert entries == 16 - 16 // 8 + 1  # evicted an eighth, added one
        # the newest entries are still cached (a hit returns identical data)
        recent = system.step((15,), {"rst": 0, "en": 1})
        assert recent.next_state == ((15 + 1) % 16,)

    def test_eviction_preserves_correctness(self, counter_design):
        system = TransitionSystem(counter_design)
        system._step_cache_limit = 4
        results = {}
        for state in range(8):
            results[state] = system.step((state,), {"rst": 0, "en": 1}).next_state
        for state in range(8):
            assert system.step((state,), {"rst": 0, "en": 1}).next_state == results[state]
