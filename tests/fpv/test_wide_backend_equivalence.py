"""Wide-operand FPV equivalence: multi-limb lowering vs the scalar backends.

The wide corpus exists precisely because the packed SoA representation
cannot hold its signals; every design here lowers through 32-bit limb
columns instead.  The engine-level contract is the same as for narrow
designs: identical verdicts, identical counterexample cycles, identical
reachable-state order and truncation points, regardless of backend or of
which lowering plan the planner picked.  A narrow ``**`` design pins the
transition-*table* path through the limb kernel (wide designs skip
reachability on state-bit caps, so they alone would never cover it).
"""

from __future__ import annotations

import pytest

from repro.bench.corpus import get_corpus
from repro.fpv import EngineConfig, FormalEngine, TransitionSystem, enumerate_reachable
from repro.hdl import Design
from repro.sim.vector import PLAN_FALLBACK, PLAN_MULTILIMB, plan_model

_ENGINE_KWARGS = dict(
    max_states=1024,
    max_transitions=60_000,
    max_path_evaluations=60_000,
    fallback_cycles=64,
    fallback_seeds=2,
)


@pytest.fixture(scope="module")
def wide_corpus():
    return get_corpus("assertionbench-wide")


def _verdict_key(result):
    cex = None
    if result.counterexample is not None:
        cex = (
            result.counterexample.trigger_cycle,
            result.counterexample.failed_term,
            tuple(tuple(sorted(cycle.items())) for cycle in result.counterexample.cycles),
        )
    return (result.status, result.complete, result.engine, result.states_explored, cex)


def _assertions(design, count=3):
    model = design.model
    out = (model.outputs or list(model.signals))[0]
    mask = model.signals[out].mask
    inputs = model.non_clock_inputs
    texts = []
    for j in range(count):
        bound = max(0, mask - (j % max(mask, 1)))
        if not inputs:
            texts.append(f"({out} <= {bound});")
            continue
        inp = inputs[j % len(inputs)]
        if j % 3 == 0:
            texts.append(f"({inp} >= 0) |-> ({out} <= {bound});")
        elif j % 3 == 1:
            texts.append(f"({inp} == 0) |=> ({out} <= {bound});")
        else:
            texts.append(f"({inp} == 0) ##1 ({inp} == 0) |=> ({out} <= {bound});")
    return texts


class TestWideCorpusVerdicts:
    def test_every_wide_design_plans_multilimb(self, wide_corpus):
        for design in wide_corpus.all_designs():
            plan = plan_model(design.model)
            assert plan.plan == PLAN_MULTILIMB, (design.name, plan.plan, plan.reason)

    def test_verdicts_and_counterexamples_match_compiled(self, wide_corpus):
        disagreements = []
        for design in wide_corpus.all_designs():
            batch = _assertions(design)
            per_backend = {}
            for backend in ("compiled", "vectorized"):
                engine = FormalEngine(
                    design, EngineConfig(backend=backend, **_ENGINE_KWARGS)
                )
                per_backend[backend] = [
                    _verdict_key(r) for r in engine.check_batch(batch)
                ]
            if per_backend["vectorized"] != per_backend["compiled"]:
                disagreements.append(design.name)
        assert not disagreements, disagreements

    def test_engine_reports_multilimb_lowering(self, wide_corpus):
        design = wide_corpus.design("wide_counter100")
        engine = FormalEngine(design, EngineConfig(backend="vectorized", **_ENGINE_KWARGS))
        engine.check_batch(_assertions(design, 1))
        info = engine.lowering_info()
        assert info == {
            "design": design.name,
            "plan": PLAN_MULTILIMB,
            "reason": "",
        }

    def test_forced_fallback_still_agrees_and_is_reported(self, wide_corpus, monkeypatch):
        """With the planner pinned to SoA the wide design cannot lower; the

        engine must fall back to the scalar path, report the per-strategy
        refusal, and still return the compiled verdicts bit-for-bit.
        """
        design = wide_corpus.design("wide_accum96")
        batch = _assertions(design)
        compiled = [
            _verdict_key(r)
            for r in FormalEngine(
                design, EngineConfig(backend="compiled", **_ENGINE_KWARGS)
            ).check_batch(batch)
        ]
        monkeypatch.setenv("REPRO_VECTOR_PLAN", "soa")
        engine = FormalEngine(design, EngineConfig(backend="vectorized", **_ENGINE_KWARGS))
        vectorized = [_verdict_key(r) for r in engine.check_batch(batch)]
        assert vectorized == compiled
        info = engine.lowering_info()
        assert info is not None
        assert info["plan"] == PLAN_FALLBACK
        assert "soa" in info["reason"]

    def test_scalar_backend_reports_no_lowering(self, wide_corpus):
        design = wide_corpus.design("wide_cmp100")
        engine = FormalEngine(design, EngineConfig(backend="compiled", **_ENGINE_KWARGS))
        assert engine.lowering_info() is None


_POW_FSM_SOURCE = """\
module powfsm(clk, rst, e, q, hi, low);
  input clk, rst;
  input [1:0] e;
  output reg [7:0] q;
  output hi, low;
  always @(posedge clk or posedge rst) begin
    if (rst)
      q <= 8'd3;
    else
      q <= (q ** e) + 8'd1;
  end
  assign hi = q[7];
  assign low = q < 8'd16;
endmodule
"""


class TestPowerTablePath:
    """A narrow ``**`` design: SoA refuses, multi-limb builds the dense table.

    8 state bits and 2 input bits sit comfortably inside the packing caps, so
    the vectorized engine takes the transition-*table* route through the limb
    kernel — the only place its packed ``step_packed`` image feeds BFS.
    """

    @pytest.fixture(scope="module")
    def pow_design(self):
        return Design.from_source(_POW_FSM_SOURCE, name="powfsm")

    def test_plans_multilimb(self, pow_design):
        plan = plan_model(pow_design.model)
        assert plan.plan == PLAN_MULTILIMB
        assert "soa" in plan.attempts

    def test_reachability_order_identical(self, pow_design):
        reference = None
        for backend in ("interpreted", "compiled", "vectorized"):
            system = TransitionSystem(pow_design, max_input_bits=12, backend=backend)
            assert system.can_enumerate_inputs
            result = enumerate_reachable(system, max_states=2048, max_transitions=60_000)
            key = (
                result.states,
                result.complete,
                result.frontier_exhausted,
                result.transitions_explored,
            )
            if reference is None:
                reference = key
            else:
                assert key == reference, backend

    @pytest.mark.parametrize("caps", [(7, 10_000), (2048, 33), (5, 41)])
    def test_truncated_reachability_identical(self, pow_design, caps):
        variants = set()
        for backend in ("interpreted", "compiled", "vectorized"):
            system = TransitionSystem(pow_design, max_input_bits=12, backend=backend)
            result = enumerate_reachable(
                system, max_states=caps[0], max_transitions=caps[1]
            )
            variants.add(
                (
                    tuple(result.states),
                    result.complete,
                    result.transitions_explored,
                )
            )
        assert len(variants) == 1, (caps, variants)

    def test_verdicts_identical(self, pow_design):
        batch = [
            "(q <= 255);",
            "(e == 0) |=> (q == 2);",
            "(rst == 0) |-> (q >= 1);",
        ]
        per_backend = {}
        for backend in ("interpreted", "compiled", "vectorized"):
            engine = FormalEngine(
                pow_design, EngineConfig(backend=backend, **_ENGINE_KWARGS)
            )
            per_backend[backend] = [_verdict_key(r) for r in engine.check_batch(batch)]
        assert per_backend["vectorized"] == per_backend["compiled"]
        assert per_backend["compiled"] == per_backend["interpreted"]
