"""Unit tests for module elaboration."""

import pytest

from repro.hdl import Design, ElaborationError, elaborate, parse_module


class TestSignalsAndParameters:
    def test_widths_from_ranges_and_parameters(self, counter_design):
        model = counter_design.model
        assert model.signals["count"].width == 4
        assert model.signals["clk"].width == 1
        assert model.parameters["WIDTH"] == 4

    def test_parameter_override(self):
        module = parse_module(
            "module m #(parameter W = 4) (input [W-1:0] d, output [W-1:0] q); assign q = d; endmodule"
        )
        model = elaborate(module, {"W": 8})
        assert model.signals["d"].width == 8

    def test_unknown_parameter_override_raises(self):
        module = parse_module("module m(a, y); input a; output y; assign y = a; endmodule")
        with pytest.raises(ElaborationError):
            elaborate(module, {"NOPE": 1})

    def test_inputs_and_outputs_classified(self, arb2_design):
        model = arb2_design.model
        assert set(model.inputs) == {"clk", "rst", "req1", "req2"}
        assert set(model.outputs) == {"gnt1", "gnt2"}

    def test_integer_declaration_width(self):
        module = parse_module(
            "module m(clk, q); input clk; output q; integer i; reg q;"
            " always @(posedge clk) begin i <= i + 1; q <= i[0]; end endmodule"
        )
        model = elaborate(module)
        assert model.signals["i"].width == 32


class TestProcessClassification:
    def test_state_registers_detected(self, arb2_design):
        model = arb2_design.model
        assert model.state_regs == ["gnt_"]
        assert model.signals["gnt_"].is_state
        # gnt1/gnt2 are assigned combinationally, not state.
        assert not model.signals["gnt1"].is_state

    def test_clock_and_reset_detection(self, arb2_design):
        assert arb2_design.model.clocks == ["clk"]
        assert arb2_design.model.resets == ["rst"]

    def test_combinational_design_has_no_seq_processes(self, adder_design):
        model = adder_design.model
        assert model.seq_processes == []
        assert not model.is_sequential

    def test_comb_and_seq_process_counts(self, arb2_design):
        model = arb2_design.model
        assert len(model.seq_processes) == 1
        assert len(model.comb_processes) == 1

    def test_state_bits_and_input_bits(self, counter_design):
        model = counter_design.model
        assert model.state_bits == 4
        # clk excluded from free inputs
        assert set(model.non_clock_inputs) == {"rst", "en"}
        assert model.input_bits == 2


class TestDriverChecks:
    def test_signal_driven_both_ways_raises(self):
        source = """
        module bad(clk, d, q); input clk, d; output q; reg q;
          assign q = d;
          always @(posedge clk) q <= d;
        endmodule
        """
        with pytest.raises(ElaborationError):
            Design.from_source(source)

    def test_driving_an_input_raises(self):
        source = "module bad(a, y); input a; output y; assign a = y; endmodule"
        with pytest.raises(ElaborationError):
            Design.from_source(source)

    def test_assign_to_undeclared_signal_raises(self):
        source = "module bad(a); input a; assign nothere = a; endmodule"
        with pytest.raises(ElaborationError):
            Design.from_source(source)

    def test_undeclared_port_in_header_raises(self):
        source = "module bad(a, ghost); input a; endmodule"
        with pytest.raises(ElaborationError):
            Design.from_source(source)


class TestInitialValues:
    def test_initial_block_sets_register_value(self):
        source = """
        module m(clk, q); input clk; output q; reg q;
          initial q = 1'b1;
          always @(posedge clk) q <= ~q;
        endmodule
        """
        design = Design.from_source(source)
        assert design.model.initial_values == {"q": 1}


class TestDesignWrapper:
    def test_loc_counting_and_type(self, arb2_design):
        assert arb2_design.loc > 10
        assert arb2_design.design_type == "sequential"

    def test_describe_mentions_name_and_loc(self, counter_design):
        text = counter_design.describe()
        assert "counter" in text and "LoC" in text

    def test_signal_names_listing(self, adder_design):
        assert "sum" in adder_design.signal_names
