"""Unit tests for the Verilog lexer."""

import pytest

from repro.hdl import LexError, tokenize
from repro.hdl.tokens import TokenKind


def kinds(text):
    return [tok.kind for tok in tokenize(text)[:-1]]


def values(text):
    return [tok.value for tok in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("module foo endmodule bar")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[1].value == "foo"
        assert tokens[2].kind is TokenKind.KEYWORD
        assert tokens[3].value == "bar"

    def test_eof_token_is_appended(self):
        tokens = tokenize("a")
        assert tokens[-1].kind is TokenKind.EOF

    def test_decimal_numbers(self):
        tokens = tokenize("42 007")
        assert [t.value for t in tokens[:-1]] == ["42", "007"]
        assert all(t.kind is TokenKind.NUMBER for t in tokens[:-1])

    def test_based_literals(self):
        tokens = tokenize("8'hFF 1'b0 4'd12 3'o7")
        assert all(t.kind is TokenKind.BASED_NUMBER for t in tokens[:-1])

    def test_based_literal_without_size(self):
        tokens = tokenize("'b1010")
        assert tokens[0].kind is TokenKind.BASED_NUMBER

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == "hello world"

    def test_dollar_identifiers(self):
        tokens = tokenize("$display")
        assert tokens[0].kind is TokenKind.IDENT


class TestPunctuation:
    def test_multi_char_operators(self):
        assert values("a <= b == c != d && e || f") == [
            "a", "<=", "b", "==", "c", "!=", "d", "&&", "e", "||", "f",
        ]

    def test_sva_operators(self):
        assert "|->" in values("a |-> b")
        assert "|=>" in values("a |=> b")
        assert "##" in values("a ##1 b")

    def test_shift_operators(self):
        assert values("a << 2 >> 1") == ["a", "<<", "2", ">>", "1"]

    def test_single_char_punctuation(self):
        assert values("(a[3:0])") == ["(", "a", "[", "3", ":", "0", "]", ")"]


class TestCommentsAndDirectives:
    def test_line_comments_are_skipped(self):
        assert values("a // comment here\nb") == ["a", "b"]

    def test_block_comments_are_skipped(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_compiler_directives_are_skipped(self):
        assert values("`timescale 1ns/1ps\nmodule") == ["module"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a \\ b")
        assert excinfo.value.line == 1
