"""Unit tests for cloc-style source metrics."""

from repro.hdl import analyze_source, count_loc


class TestLineClassification:
    def test_blank_and_comment_lines_excluded(self):
        source = "\n".join(
            [
                "module m();",
                "",
                "  // a comment",
                "  wire x;",
                "  /* block",
                "     comment */",
                "endmodule",
            ]
        )
        metrics = analyze_source(source)
        assert metrics.total_lines == 7
        assert metrics.blank_lines == 1
        assert metrics.comment_lines == 3
        assert metrics.code_lines == 3
        assert count_loc(source) == 3

    def test_code_with_trailing_comment_counts_as_code(self):
        assert count_loc("wire x; // trailing") == 1

    def test_inline_block_comment_is_stripped(self):
        assert count_loc("wire /* inline */ x;") == 1

    def test_block_comment_opening_line_with_code(self):
        source = "wire x; /* starts here\n still comment */\nwire y;"
        metrics = analyze_source(source)
        assert metrics.code_lines == 2
        assert metrics.comment_lines == 1

    def test_empty_source(self):
        metrics = analyze_source("")
        assert metrics.total_lines == 0
        assert metrics.code_lines == 0

    def test_comment_only_source(self):
        assert count_loc("// nothing\n/* at all */") == 0
