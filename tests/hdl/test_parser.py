"""Unit tests for the Verilog parser."""

import pytest

from repro.hdl import (
    AlwaysBlock,
    Assignment,
    Binary,
    BitSelect,
    Case,
    Concat,
    ContinuousAssign,
    If,
    NetDecl,
    Number,
    ParamDecl,
    ParseError,
    PartSelect,
    Replicate,
    Ternary,
    Unary,
    parse_expression,
    parse_module,
    parse_source,
)


class TestExpressions:
    def test_precedence_of_arithmetic(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_precedence_of_equality_vs_bitwise(self):
        expr = parse_expression("a == 1 & b == 0")
        assert isinstance(expr, Binary) and expr.op == "&"
        assert expr.left.op == "==" and expr.right.op == "=="

    def test_logical_operators(self):
        expr = parse_expression("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_ternary(self):
        expr = parse_expression("sel ? a : b")
        assert isinstance(expr, Ternary)

    def test_unary_reduction_and_not(self):
        expr = parse_expression("~a & !b")
        assert isinstance(expr.left, Unary) and expr.left.op == "~"
        assert isinstance(expr.right, Unary) and expr.right.op == "!"

    def test_bit_and_part_select(self):
        assert isinstance(parse_expression("data[3]"), BitSelect)
        assert isinstance(parse_expression("data[7:4]"), PartSelect)

    def test_concatenation_and_replication(self):
        assert isinstance(parse_expression("{a, b, c}"), Concat)
        assert isinstance(parse_expression("{4{a}}"), Replicate)

    def test_based_number_value(self):
        expr = parse_expression("8'hFF")
        assert isinstance(expr, Number)
        assert expr.value == 255 and expr.width == 8

    def test_signals_collection(self):
        expr = parse_expression("(a & b) | data[idx]")
        assert expr.signals() == {"a", "b", "data", "idx"}

    def test_trailing_junk_raises(self):
        with pytest.raises(ParseError):
            parse_expression("a + b extra")


class TestModuleStructure:
    def test_non_ansi_module(self):
        module = parse_module(
            "module m(a, b, y); input a, b; output y; assign y = a & b; endmodule"
        )
        assert module.name == "m"
        assert module.port_order == ["a", "b", "y"]
        assert len(module.items_of(ContinuousAssign)) == 1

    def test_ansi_module_with_parameters(self):
        source = """
        module m #(parameter W = 8, parameter D = 2) (
          input clk,
          input [W-1:0] d,
          output reg [W-1:0] q
        );
          always @(posedge clk) q <= d;
        endmodule
        """
        module = parse_module(source)
        assert [p.name for p in module.header_params] == ["W", "D"]
        assert module.port_order == ["clk", "d", "q"]
        assert len(module.items_of(AlwaysBlock)) == 1

    def test_multiple_modules_in_source(self):
        source = "module a(); endmodule module b(); endmodule"
        parsed = parse_source(source)
        assert [m.name for m in parsed.modules] == ["a", "b"]
        assert parsed.module("b").name == "b"

    def test_localparam_and_parameter_items(self):
        module = parse_module(
            "module m(); parameter A = 4; localparam B = A + 1; endmodule"
        )
        params = module.items_of(ParamDecl)
        assert [p.name for p in params] == ["A", "B"]
        assert params[1].local is True

    def test_port_decl_with_reg(self):
        module = parse_module(
            "module m(q); output reg [3:0] q; always @(*) q = 0; endmodule"
        )
        assert any(isinstance(item, NetDecl) and "q" in item.names for item in module.items)

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_module("module m(a) input a; endmodule")

    def test_unsupported_item_raises(self):
        with pytest.raises(ParseError):
            parse_module("module m(); specify endspecify endmodule")


class TestProceduralStatements:
    def _always_body(self, text):
        module = parse_module(f"module m(clk, d, q); input clk, d; output q; reg q; {text} endmodule")
        return module.items_of(AlwaysBlock)[0]

    def test_nonblocking_and_blocking_assignment(self):
        block = self._always_body("always @(posedge clk) begin q <= d; end")
        stmt = block.body.statements[0]
        assert isinstance(stmt, Assignment) and stmt.blocking is False
        block = self._always_body("always @(*) begin q = d; end")
        assert block.body.statements[0].blocking is True

    def test_if_else_chain(self):
        block = self._always_body(
            "always @(posedge clk) if (d) q <= 1; else q <= 0;"
        )
        assert isinstance(block.body, If)
        assert block.body.else_body is not None

    def test_case_statement_with_default(self):
        block = self._always_body(
            """always @(*) case (d)
                 1'b0: q = 0;
                 1'b1: q = 1;
                 default: q = 0;
               endcase"""
        )
        assert isinstance(block.body, Case)
        assert len(block.body.items) == 2
        assert block.body.default is not None

    def test_sensitivity_star_forms(self):
        for form in ("always @(*)", "always @*"):
            block = self._always_body(f"{form} q = d;")
            assert block.sensitivity.star is True

    def test_sensitivity_edges(self):
        block = self._always_body("always @(posedge clk or negedge d) q <= 1;")
        edges = [(e.edge, e.signal) for e in block.sensitivity.edges]
        assert ("posedge", "clk") in edges and ("negedge", "d") in edges

    def test_concat_lvalue(self):
        module = parse_module(
            "module m(a, b, c); input c; output a, b; assign {a, b} = {c, c}; endmodule"
        )
        assign = module.items_of(ContinuousAssign)[0]
        assert isinstance(assign.target, Concat)
