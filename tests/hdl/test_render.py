"""Round-trip tests for the AST -> Verilog renderer."""

from __future__ import annotations

import pytest

from repro.bench.corpus import get_corpus
from repro.hdl.design import Design
from repro.hdl.parser import parse_source
from repro.hdl.render import render_module
from repro.sim.simulator import Simulator
from repro.sim.stimulus import RandomStimulus, ResetSequenceStimulus


def _corpus_designs():
    return get_corpus("assertionbench-smoke").all_designs()


@pytest.mark.parametrize("design", _corpus_designs(), ids=lambda d: d.name)
def test_rendered_source_elaborates_to_equivalent_model(design):
    rendered = render_module(design.module)
    rebuilt = Design.from_source(rendered, name=design.name)
    golden, copy = design.model, rebuilt.model
    assert sorted(golden.signals) == sorted(copy.signals)
    assert {n: s.width for n, s in golden.signals.items()} == {
        n: s.width for n, s in copy.signals.items()
    }
    assert golden.inputs == copy.inputs
    assert golden.outputs == copy.outputs
    assert sorted(golden.state_regs) == sorted(copy.state_regs)
    assert golden.parameters == copy.parameters
    assert golden.initial_values == copy.initial_values
    assert golden.clocks == copy.clocks
    assert golden.resets == copy.resets
    assert len(golden.assigns) == len(copy.assigns)
    assert len(golden.comb_processes) == len(copy.comb_processes)
    assert len(golden.seq_processes) == len(copy.seq_processes)


@pytest.mark.parametrize("design", _corpus_designs(), ids=lambda d: d.name)
def test_rendered_source_simulates_identically(design):
    rebuilt = Design.from_source(render_module(design.module), name=design.name)
    stimulus = ResetSequenceStimulus(RandomStimulus(seed=7), reset_cycles=2)
    golden_trace = Simulator(design).run(cycles=32, stimulus=stimulus)
    stimulus = ResetSequenceStimulus(RandomStimulus(seed=7), reset_cycles=2)
    copy_trace = Simulator(rebuilt).run(cycles=32, stimulus=stimulus)
    assert golden_trace.num_cycles == copy_trace.num_cycles
    for cycle in range(golden_trace.num_cycles):
        assert golden_trace.row(cycle) == copy_trace.row(cycle)


def test_render_is_reparse_stable():
    """render(parse(render(m))) is a fixed point (canonical form)."""
    design = _corpus_designs()[0]
    once = render_module(design.module)
    twice = render_module(parse_source(once).module())
    assert once == twice


def test_renderer_covers_case_and_initial_blocks():
    source = """\
module fixture(clk, sel, q);
  input clk;
  input [1:0] sel;
  output reg [3:0] q;
  parameter INIT = 3;
  initial
    q = INIT;
  always @(posedge clk)
    case (sel)
      0: q <= 4'd1;
      1, 2: q <= q + 1;
      default: q <= 0;
    endcase
endmodule
"""
    module = parse_source(source).module()
    rendered = render_module(module)
    rebuilt = Design.from_source(rendered)
    assert rebuilt.model.initial_values == {"q": 3}
    assert rebuilt.model.parameters == {"INIT": 3}
    reparsed = render_module(parse_source(rendered).module())
    assert reparsed == rendered
