"""Unit tests for the LLM substrate: prompts, profiles, generators, fine-tuning."""

import pytest

from repro.llm import (
    COTS_PROFILES,
    CODELLAMA_2,
    DecodingConfig,
    FINETUNED_PROFILES,
    FineTuner,
    FineTuningConfig,
    GPT_35,
    GPT_4O,
    LLAMA3_70B,
    NgramModel,
    OutcomeMix,
    PromptBuilder,
    SimulatedCotsLLM,
    TrainingExample,
    build_cots_models,
    competence_from,
    count_tokens,
    flatten_verilog,
    learn_statistics,
    profile_by_name,
    split_designs,
    tokenize_text,
)
from repro.llm.assertion_llm import AssertionLLM
from repro.llm.prompt import InContextExample


class TestTokenizer:
    def test_tokenize_identifiers_operators_literals(self):
        tokens = tokenize_text("(req1 == 1) |-> (gnt1 == 8'hFF);")
        assert "req1" in tokens and "|->" in tokens and "8'hFF" in tokens

    def test_count_tokens(self):
        assert count_tokens("a == b") == 3

    def test_ngram_model_prefers_seen_phrasings(self):
        model = NgramModel(order=3).fit(
            ["(req1 == 1) |-> (gnt1 == 1);", "(req2 == 1) |-> (gnt2 == 1);"]
        )
        seen = model.sequence_logprob("(req1 == 1) |-> (gnt2 == 1);")
        unseen = model.sequence_logprob("xyzzy plugh |=> frobnicate;")
        assert seen > unseen

    def test_ngram_rejects_bad_order(self):
        with pytest.raises(ValueError):
            NgramModel(order=1)


class TestPrompt:
    def test_flatten_removes_comments_and_newlines(self):
        flattened = flatten_verilog("module m(); // comment\n  wire x;\nendmodule\n")
        assert "\n" not in flattened and "comment" not in flattened

    def test_prompt_structure_matches_figure5(self, arb2_design, counter_design, knowledge):
        assertions = knowledge.verified_assertions(arb2_design)[:2]
        example = InContextExample(design=arb2_design, assertions=assertions)
        prompt = PromptBuilder().build([example], counter_design)
        assert prompt.k == 1
        assert "Program 1:" in prompt.text
        assert "Assertions 1:" in prompt.text
        assert prompt.text.strip().endswith("Test Assertions:")
        assert prompt.token_count > 50

    def test_zero_shot_prompt(self, counter_design):
        prompt = PromptBuilder().build([], counter_design)
        assert prompt.k == 0
        assert "Program 1" not in prompt.text


class TestProfiles:
    def test_outcome_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            OutcomeMix(valid=0.5, cex=0.2, error=0.1)

    def test_mix_for_nearest_k(self):
        assert GPT_35.mix_for(1).valid == pytest.approx(0.18)
        assert GPT_35.mix_for(3).valid in (GPT_35.mix_for(1).valid, GPT_35.mix_for(5).valid)

    def test_profile_lookup(self):
        assert profile_by_name("GPT-4o") is GPT_4O
        with pytest.raises(KeyError):
            profile_by_name("GPT-7")

    def test_calibration_matches_paper_observations(self):
        # Observation 1: GPT family improves with k, LLaMa3 regresses.
        assert GPT_35.mix_for(5).valid > GPT_35.mix_for(1).valid
        assert GPT_4O.mix_for(5).valid > GPT_4O.mix_for(1).valid
        assert LLAMA3_70B.mix_for(5).valid < LLAMA3_70B.mix_for(1).valid
        # Observation 3: GPT-4o has the best intended valid fraction.
        for k in (1, 5):
            assert GPT_4O.mix_for(k).valid == max(p.mix_for(k).valid for p in COTS_PROFILES)
        # Observation 5: fine-tuned CodeLLaMa gains Pass and sheds CEX.
        tuned = FINETUNED_PROFILES[CODELLAMA_2.name]
        assert tuned.mix_for(1).valid > CODELLAMA_2.mix_for(1).valid
        assert tuned.mix_for(1).cex < CODELLAMA_2.mix_for(1).cex


class TestSimulatedCots:
    def test_generation_is_deterministic_per_seed(self, arb2_design, counter_design, knowledge, icl_examples):
        model = SimulatedCotsLLM(GPT_4O, knowledge)
        prompt = PromptBuilder().build(icl_examples.for_k(1), counter_design)
        first = model.generate(prompt, DecodingConfig(seed=50))
        second = model.generate(prompt, DecodingConfig(seed=50))
        assert first.lines == second.lines
        third = model.generate(prompt, DecodingConfig(seed=51))
        assert third.lines != first.lines or third.num_assertions != first.num_assertions

    def test_generation_count_within_profile_bounds(self, counter_design, knowledge, icl_examples):
        model = SimulatedCotsLLM(GPT_35, knowledge)
        prompt = PromptBuilder().build(icl_examples.for_k(5), counter_design)
        result = model.generate(prompt, DecodingConfig())
        low, high = GPT_35.assertions_per_design
        assert low <= result.num_assertions <= high or result.num_assertions == 0

    def test_token_limit_truncates(self, counter_design, knowledge, icl_examples):
        model = SimulatedCotsLLM(GPT_4O, knowledge)
        prompt = PromptBuilder().build(icl_examples.for_k(1), counter_design)
        result = model.generate(prompt, DecodingConfig(max_output_tokens=12))
        assert result.truncated or result.num_assertions <= 1

    def test_build_cots_models_shares_knowledge(self, knowledge):
        models = build_cots_models(COTS_PROFILES, knowledge)
        assert len(models) == 4
        assert {m.name for m in models} == {p.name for p in COTS_PROFILES}


class TestFineTuning:
    def test_split_designs_fractions(self, corpus):
        designs = corpus.test_designs(limit=20)
        train, test = split_designs(designs, 0.75, seed=50)
        assert len(train) == 15 and len(test) == 5
        assert not {d.name for d in train} & {d.name for d in test}

    def test_split_designs_invalid_fraction(self, corpus):
        with pytest.raises(ValueError):
            split_designs(corpus.test_designs(limit=4), 1.5, seed=0)

    def test_competence_curve_monotone_and_saturating(self):
        config = FineTuningConfig()
        none = competence_from(0, 20, config)
        some = competence_from(10, 20, config)
        full = competence_from(75, 20, config)
        assert none == 0.0
        assert 0.0 < some < full <= 1.0

    def test_learn_statistics(self, arb2_design, knowledge):
        assertions = knowledge.verified_assertions(arb2_design)
        stats = learn_statistics([TrainingExample(arb2_design, assertions)])
        assert stats.num_examples == 1
        assert stats.num_assertions == len(assertions)
        assert stats.implication_preference() in ("|->", "|=>")
        assert stats.ngram.vocabulary_size > 0

    def test_finetuner_produces_assertion_llm(self, corpus, knowledge):
        tuner = FineTuner(knowledge, FineTuningConfig(train_fraction=0.75, seed=50))
        designs = corpus.test_designs(limit=8)
        model, report = tuner.finetune(CODELLAMA_2, designs)
        assert isinstance(model, AssertionLLM)
        assert report.num_train_designs + report.num_test_designs == 8
        assert 0.0 < model.competence <= 1.0
        assert model.name == FINETUNED_PROFILES[CODELLAMA_2.name].name

    def test_unknown_foundation_rejected(self, knowledge):
        stats = learn_statistics([])
        with pytest.raises(KeyError):
            AssertionLLM(foundation=GPT_35, statistics=stats, competence=1.0, knowledge=knowledge)

    def test_zero_competence_matches_foundation_mix(self, knowledge):
        stats = learn_statistics([])
        model = AssertionLLM(
            foundation=CODELLAMA_2, statistics=stats, competence=0.0, knowledge=knowledge
        )
        assert model.profile.mix_for(1).valid == pytest.approx(CODELLAMA_2.mix_for(1).valid)

    def test_full_competence_matches_tuned_mix(self, knowledge):
        stats = learn_statistics([])
        model = AssertionLLM(
            foundation=CODELLAMA_2, statistics=stats, competence=1.0, knowledge=knowledge
        )
        tuned = FINETUNED_PROFILES[CODELLAMA_2.name]
        assert model.profile.mix_for(5).valid == pytest.approx(tuned.mix_for(5).valid)
