"""Unit and integration tests for the assertion miners and ranking."""

import pytest

from repro.fpv import FormalEngine, ProofStatus
from repro.mining import (
    AssertionMiner,
    AssertionRanker,
    Atom,
    GoldMineConfig,
    GoldMineMiner,
    HarmConfig,
    HarmMiner,
    MinerConfig,
    build_dataset,
    candidate_atoms,
    mine_verified_assertions,
    mining_targets,
    trace_atoms,
)
from repro.sim import Simulator


@pytest.fixture(scope="module")
def arb2_trace(arb2_design):
    return Simulator(arb2_design).run(cycles=300, seed=7)


class TestDataset:
    def test_candidate_atoms_single_bit(self, arb2_design):
        atoms = candidate_atoms(arb2_design, "req1")
        assert {(a.signal, a.value) for a in atoms} == {("req1", 0), ("req1", 1)}

    def test_candidate_atoms_wide_signal_uses_bits(self, corpus):
        design = corpus.design("counter16")
        atoms = candidate_atoms(design, "count")
        assert all(atom.bit is not None for atom in atoms)

    def test_trace_atoms_restricted_to_observed(self, arb2_design, arb2_trace):
        atoms = trace_atoms(arb2_design, "gnt_", arb2_trace)
        assert {a.value for a in atoms} <= {0, 1}

    def test_atom_expression_and_evaluation(self):
        atom = Atom("sig", 1)
        assert str(atom.expr()) == "(sig == 1)"
        assert atom.evaluate({"sig": 1}) and not atom.evaluate({"sig": 0})
        bit_atom = Atom("bus", 1, bit=2)
        assert bit_atom.evaluate({"bus": 0b100})

    def test_build_dataset_shapes(self, arb2_design, arb2_trace):
        dataset = build_dataset(arb2_design, arb2_trace, Atom("gnt1", 1))
        assert dataset.num_rows == arb2_trace.num_cycles
        assert dataset.features
        assert 0 < dataset.positives < dataset.num_rows

    def test_build_dataset_with_delay(self, arb2_design, arb2_trace):
        dataset = build_dataset(arb2_design, arb2_trace, Atom("gnt_", 1), delay=1)
        assert dataset.num_rows == arb2_trace.num_cycles - 1

    def test_mining_targets_order(self, arb2_design):
        targets = mining_targets(arb2_design)
        assert targets[0] in ("gnt1", "gnt2")
        assert "gnt_" in targets


class TestGoldMine:
    def test_mines_candidates_for_arbiter(self, arb2_design, arb2_trace):
        candidates = GoldMineMiner(arb2_design).mine(arb2_trace)
        assert candidates
        rendered = [c.body_text() for c in candidates]
        assert any("gnt1" in text for text in rendered)

    def test_candidates_hold_on_the_mining_trace(self, arb2_design, arb2_trace):
        from repro.fpv import TraceChecker

        checker = TraceChecker(arb2_design.model)
        for candidate in GoldMineMiner(arb2_design).mine(arb2_trace)[:10]:
            assert checker.check(candidate, arb2_trace).holds

    def test_max_depth_limits_antecedent_size(self, arb2_design, arb2_trace):
        config = GoldMineConfig(max_depth=1)
        for candidate in GoldMineMiner(arb2_design, config).mine(arb2_trace):
            assert len(candidate.antecedent) <= 1


class TestHarm:
    def test_mines_supported_templates(self, arb2_design, arb2_trace):
        candidates = HarmMiner(arb2_design).mine(arb2_trace)
        assert candidates
        sources = {c.source_text for c in candidates}
        assert any(s.startswith("harm:") for s in sources)

    def test_min_support_filters_rare_antecedents(self, arb2_design, arb2_trace):
        from repro.fpv import TraceChecker

        checker = TraceChecker(arb2_design.model)
        config = HarmConfig(min_support=20)
        for candidate in HarmMiner(arb2_design, config).mine(arb2_trace):
            assert checker.check(candidate, arb2_trace).triggers >= 20


class TestRanking:
    def test_ranking_orders_by_score(self, arb2_design, arb2_trace):
        miner = HarmMiner(arb2_design)
        ranked = AssertionRanker(arb2_design).rank(miner.mine(arb2_trace), arb2_trace)
        scores = [item.score for item in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_top_selects_requested_count(self, arb2_design, arb2_trace):
        candidates = HarmMiner(arb2_design).mine(arb2_trace)
        top = AssertionRanker(arb2_design).top(candidates, arb2_trace, 3)
        assert len(top) == min(3, len(candidates))


class TestEndToEndMiner:
    def test_miner_produces_verified_assertions(self, arb2_design):
        report = AssertionMiner(arb2_design).mine()
        assert report.num_candidates > 0
        assert 0 < report.num_verified <= report.num_candidates
        assert len(report.selected) <= MinerConfig().max_assertions

    def test_selected_assertions_are_actually_proven(self, arb2_design):
        engine = FormalEngine(arb2_design)
        for assertion in mine_verified_assertions(arb2_design)[:6]:
            assert engine.check(assertion).status is ProofStatus.PROVEN

    def test_verification_can_be_disabled(self, arb2_design):
        config = MinerConfig(verify=False)
        report = AssertionMiner(arb2_design, config).mine()
        assert report.proof_results == []
        assert report.verified == report.candidates
