"""Tests for the mutation campaign stage and its durable log."""

from __future__ import annotations

import pytest

from repro.core.scheduler import SchedulerConfig, VerificationService
from repro.core.store import RunStore
from repro.fpv.engine import EngineConfig
from repro.fpv.result import ProofResult, ProofStatus
from repro.hdl.design import Design
from repro.mutate import (
    MutationCampaign,
    MutationConfig,
    MutationRecord,
    MutationSummary,
    classify_outcome,
)

_COUNTER = """\
module small_counter(clk, rst, en, count, wrap);
  input clk, rst, en;
  output [2:0] count;
  output wrap;
  reg [2:0] count;
  assign wrap = count == 7;
  always @(posedge clk or posedge rst)
    if (rst)
      count <= 0;
    else if (en)
      count <= count + 1;
endmodule
"""

#: A behavioural assertion (killable) and a tautology (unkillable).
_STRONG = "(rst == 1) |-> (count == 0);"
_TAUTOLOGY = "(count >= 0) |-> (count == count);"


@pytest.fixture()
def counter():
    return Design.from_source(_COUNTER, category="sequential")


@pytest.fixture()
def service():
    with VerificationService(SchedulerConfig(engine=EngineConfig())) as svc:
        yield svc


class TestClassifyOutcome:
    @pytest.mark.parametrize(
        "status, complete, expected",
        [
            (ProofStatus.CEX, True, "killed"),
            (ProofStatus.PROVEN, True, "survived"),
            (ProofStatus.VACUOUS, True, "survived"),
            (ProofStatus.PROVEN, False, "timeout"),
            (ProofStatus.VACUOUS, False, "timeout"),
            (ProofStatus.ERROR, True, "error"),
        ],
    )
    def test_four_way_mapping(self, status, complete, expected):
        proof = ProofResult(status=status, complete=complete)
        assert classify_outcome(proof) == expected


class TestCampaign:
    def test_strong_assertion_outkills_tautology(self, counter, service):
        campaign = MutationCampaign(service, config=MutationConfig(limit_per_design=12))
        summary = campaign.run([counter], {counter.name: [_STRONG, _TAUTOLOGY]})
        scores = {score.assertion: score for score in summary.scores()}
        strong = scores[" ".join(_STRONG.split())]
        tautology = scores[" ".join(_TAUTOLOGY.split())]
        assert strong.killed > 0
        assert tautology.killed == 0
        assert tautology.kill_rate == 0.0
        assert strong.kill_rate > tautology.kill_rate

    def test_designs_without_passing_assertions_are_skipped(self, counter, service):
        campaign = MutationCampaign(service)
        summary = campaign.run([counter], {})
        assert len(summary) == 0

    def test_weak_ranking_orders_by_kill_rate(self, counter, service):
        campaign = MutationCampaign(service, config=MutationConfig(limit_per_design=12))
        summary = campaign.run([counter], {counter.name: [_STRONG, _TAUTOLOGY]})
        weak = summary.weak_assertions(limit=2, min_mutants=1)
        assert weak[0].assertion == " ".join(_TAUTOLOGY.split())
        assert weak[0].kill_rate <= weak[-1].kill_rate

    def test_weak_ranking_never_ranks_undecided_assertions(self):
        record = dict(
            design_name="d", design_fingerprint="f", category="c",
            operator="bin-swap", site=0, description="", mutant_fingerprint="m",
            status="proven", engine="explicit-state", complete=False,
        )
        summary = MutationSummary.from_records(
            [
                MutationRecord(assertion="a_timeout", outcome="timeout", **record),
                MutationRecord(assertion="a_killed", outcome="killed",
                               **{**record, "site": 1, "status": "cex"}),
            ]
        )
        weak = summary.weak_assertions(min_mutants=0)
        assert [score.assertion for score in weak] == ["a_killed"]

    def test_category_distribution_buckets_by_design_category(self, counter, service):
        campaign = MutationCampaign(service, config=MutationConfig(limit_per_design=8))
        summary = campaign.run([counter], {counter.name: [_STRONG]})
        distribution = summary.category_distribution()
        assert list(distribution) == ["sequential"]
        assert distribution["sequential"]["assertions"] == 1


class TestDurability:
    def test_records_stream_to_mutations_jsonl_and_resume(self, counter, tmp_path):
        store = RunStore(tmp_path / "run")
        config = MutationConfig(limit_per_design=10)
        with VerificationService(
            SchedulerConfig(engine=EngineConfig()), cache=store.verdict_cache()
        ) as svc:
            summary = MutationCampaign(svc, store, config).run(
                [counter], {counter.name: [_STRONG]}
            )
        assert store.mutations_path.exists()
        first = {record.key: record.outcome for record in summary.records}
        assert first

        # A rerun over the same store replays the log: identical summary,
        # no re-enumeration (the design marker short-circuits it).
        store2 = RunStore(tmp_path / "run")
        with VerificationService(
            SchedulerConfig(engine=EngineConfig()), cache=store2.verdict_cache()
        ) as svc2:
            campaign = MutationCampaign(svc2, store2, config)
            resumed = campaign.run(
                [counter],
                {counter.name: [_STRONG]},
                progress=lambda message: pytest.fail(
                    f"resume re-enumerated a completed design: {message}"
                ),
            )
        assert {record.key: record.outcome for record in resumed.records} == first
        assert svc2.cache.stats()["misses"] == 0

    def test_marker_with_different_config_rescans(self, counter, tmp_path):
        store = RunStore(tmp_path / "run")
        with VerificationService(
            SchedulerConfig(engine=EngineConfig()), cache=store.verdict_cache()
        ) as svc:
            small = MutationCampaign(
                svc, store, MutationConfig(limit_per_design=4)
            ).run([counter], {counter.name: [_STRONG]})
            # A rerun with a larger cap must not be satisfied by the old
            # marker: it re-enumerates and scores the additional mutants.
            large = MutationCampaign(
                svc, store, MutationConfig(limit_per_design=10)
            ).run([counter], {counter.name: [_STRONG]})
        assert len(large) > len(small)

    def test_summary_scope_is_the_current_sweep(self, counter, tmp_path):
        store = RunStore(tmp_path / "run")
        with VerificationService(
            SchedulerConfig(engine=EngineConfig()), cache=store.verdict_cache()
        ) as svc:
            wide = MutationCampaign(
                svc, store, MutationConfig(limit_per_design=10)
            ).run([counter], {counter.name: [_STRONG]})
            # A narrower rerun must report only its own 4-mutant sweep even
            # though the log still holds the earlier 10-mutant records.
            narrow = MutationCampaign(
                svc, store, MutationConfig(limit_per_design=4)
            ).run([counter], {counter.name: [_STRONG]})
        assert len(wide) == 10
        assert len(narrow) == 4
        assert {r.key for r in narrow.records} <= {r.key for r in wide.records}

    def test_log_round_trips_through_store(self, counter, tmp_path):
        store = RunStore(tmp_path / "run")
        with VerificationService(
            SchedulerConfig(engine=EngineConfig()), cache=store.verdict_cache()
        ) as svc:
            MutationCampaign(svc, store, MutationConfig(limit_per_design=6)).run(
                [counter], {counter.name: [_STRONG, _TAUTOLOGY]}
            )
        records, markers = RunStore(tmp_path / "run").load_mutation_log()
        assert records
        assert counter.name in markers
        marker = markers[counter.name]
        assert marker["stats"]["viable"] > 0
        rebuilt = MutationSummary.from_records(records)
        assert {score.assertion for score in rebuilt.scores()} == {
            " ".join(_STRONG.split()),
            " ".join(_TAUTOLOGY.split()),
        }
