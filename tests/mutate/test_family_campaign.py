"""Campaign-level identity: family scheduling never changes a record.

The mutation campaign's observable output — the (design, mutant, assertion)
record stream — must be unchanged by family batching and the witness
pre-screen, and reruns over a store written by one mode must resume cleanly
under the other.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.bench.corpus import get_corpus
from repro.core.scheduler import SchedulerConfig, VerificationService
from repro.core.store import RunStore
from repro.fpv.engine import EngineConfig
from repro.mining import mine_verified_assertions
from repro.mutate import MutationCampaign, MutationConfig

_ENGINE = EngineConfig(
    max_states=1024,
    max_transitions=60_000,
    max_input_bits=8,
    max_state_bits=12,
    max_path_evaluations=60_000,
    fallback_cycles=96,
    fallback_seeds=2,
    backend="vectorized",
)

_DESIGN_NAMES = ["d_flip_flop", "counter", "mod6_counter", "debouncer3"]


@pytest.fixture(scope="module")
def workload():
    corpus = get_corpus("assertionbench-mutation")
    designs = [corpus.design(name) for name in _DESIGN_NAMES]
    with VerificationService(SchedulerConfig(engine=_ENGINE)) as service:
        assertions: Dict[str, List[str]] = {}
        for design in designs:
            mined = mine_verified_assertions(design)
            candidates = [a.to_sva(include_assert=True) for a in mined[:6]]
            verdicts = service.check_design(design, candidates)
            assertions[design.name] = [
                text for text, proof in zip(candidates, verdicts) if proof.is_pass
            ][:3]
    return designs, assertions


def _records(designs, assertions, config, store=None):
    with VerificationService(SchedulerConfig(engine=_ENGINE)) as service:
        campaign = MutationCampaign(service, store=store, config=config)
        summary = campaign.run(designs, assertions)
    return {
        record.key: (record.outcome, record.status, record.complete)
        for record in summary.records
    }


def test_family_and_per_mutant_campaigns_record_identically(workload):
    designs, assertions = workload
    family = _records(designs, assertions, MutationConfig(limit_per_design=6))
    reference = _records(
        designs,
        assertions,
        MutationConfig(limit_per_design=6, family_batching=False, witness_screen=False),
    )
    assert family
    assert family == reference


def test_family_campaign_resumes_from_per_mutant_store(tmp_path, workload):
    designs, assertions = workload
    store = RunStore(tmp_path / "run")
    reference = _records(
        designs,
        assertions,
        MutationConfig(limit_per_design=6, family_batching=False),
        store=store,
    )
    # A family-batched rerun over the same store replays every record from
    # the log (the throughput knob is excluded from the config identity).
    resumed = _records(designs, assertions, MutationConfig(limit_per_design=6), store=store)
    assert resumed == reference
