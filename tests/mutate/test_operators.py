"""Tests for the mutation operator library."""

from __future__ import annotations

import pytest

from repro.fpv.engine import design_fingerprint
from repro.hdl.design import Design
from repro.mutate import (
    apply_mutation,
    enumerate_mutants,
    mutation_sites,
    operator_names,
)

_COUNTER = """\
module small_counter(clk, rst, en, count, wrap);
  input clk, rst, en;
  output [2:0] count;
  output wrap;
  reg [2:0] count;
  assign wrap = count == 7;
  always @(posedge clk or posedge rst)
    if (rst)
      count <= 0;
    else if (en)
      count <= count + 1;
endmodule
"""


@pytest.fixture()
def counter():
    return Design.from_source(_COUNTER, category="sequential")


class TestSiteEnumeration:
    def test_sites_are_deterministic(self, counter):
        assert mutation_sites(counter) == mutation_sites(counter)

    def test_every_default_operator_finds_a_site(self, counter):
        present = {site.operator for site in mutation_sites(counter)}
        assert present == set(operator_names())

    def test_unknown_operator_is_rejected(self, counter):
        with pytest.raises(KeyError, match="unknown mutation operator"):
            mutation_sites(counter, ["not-an-operator"])

    def test_operator_subset_restricts_sites(self, counter):
        sites = mutation_sites(counter, ["reset-flip"])
        assert len(sites) == 1
        assert sites[0].operator == "reset-flip"
        assert "flip reset polarity" in sites[0].description

    def test_enumeration_leaves_the_golden_ast_untouched(self, counter):
        from repro.hdl import ast as hdl_ast

        assign = counter.module.items_of(hdl_ast.ContinuousAssign)[0]
        always = counter.module.items_of(hdl_ast.AlwaysBlock)[0]
        before = (id(assign.value), id(always.body.condition))
        mutation_sites(counter)
        enumerate_mutants(counter, limit=3)
        assert (id(assign.value), id(always.body.condition)) == before


class TestApplyMutation:
    def test_bin_swap_changes_the_operator(self, counter):
        sites = mutation_sites(counter, ["bin-swap"])
        swap = next(s for s in sites if "'=='" in s.description)
        mutant = apply_mutation(counter, "bin-swap", swap.index)
        assert "count != 7" in mutant.source

    def test_reset_flip_negates_the_guard(self, counter):
        mutant = apply_mutation(counter, "reset-flip", 0)
        assert "if ((!rst))" in mutant.source

    def test_stuck_driver_freezes_the_assign(self, counter):
        sites = mutation_sites(counter, ["stuck-driver"])
        wrap_site = next(s for s in sites if "wrap" in s.description)
        mutant = apply_mutation(counter, "stuck-driver", wrap_site.index)
        assert "assign wrap = " in mutant.source
        assert "count == 7" not in mutant.source

    def test_mutants_are_content_addressed(self, counter):
        golden_fp = design_fingerprint(counter.source)
        seen = {golden_fp}
        for site in mutation_sites(counter)[:8]:
            mutant = apply_mutation(counter, site.operator, site.index)
            fp = design_fingerprint(mutant.source)
            assert fp not in seen, "mutant fingerprint collides"
            seen.add(fp)
            again = apply_mutation(counter, site.operator, site.index)
            assert design_fingerprint(again.source) == fp

    def test_out_of_range_site_raises(self, counter):
        with pytest.raises(IndexError):
            apply_mutation(counter, "reset-flip", 99)

    def test_width_one_literals_mutate_once(self):
        # +1 and -1 wrap to the same value on a 1-bit literal; emitting both
        # would double-count the identical mutant in every kill tally.
        design = Design.from_source(
            "module m(a, y);\n  input a;\n  output y;\n"
            "  assign y = a ^ 1'b1;\nendmodule\n"
        )
        sites = mutation_sites(design, ["const-offset"])
        assert len(sites) == 1
        fingerprints = {
            design_fingerprint(apply_mutation(design, s.operator, s.index).source)
            for s in sites
        }
        assert len(fingerprints) == len(sites)


class TestEnumerateMutants:
    def test_all_mutants_carry_witnesses(self, counter):
        mutants, stats = enumerate_mutants(counter)
        assert stats.viable == len(mutants) > 0
        assert all(m.witness is not None for m in mutants)
        assert stats.stillborn + stats.equivalent + stats.viable + stats.truncated == stats.sites

    def test_limit_caps_round_robin_across_operators(self, counter):
        mutants, stats = enumerate_mutants(counter, limit=5)
        assert len(mutants) == 5
        assert stats.truncated > 0
        assert len({m.operator for m in mutants}) >= 3

    def test_semantic_filter_can_be_disabled(self, counter):
        unfiltered, _ = enumerate_mutants(counter, semantic_filter=False, limit=4)
        assert all(m.witness is None for m in unfiltered)

    def test_mutant_ids_are_stable_addresses(self, counter):
        mutants, _ = enumerate_mutants(counter, limit=6)
        for mutant in mutants:
            rebuilt = apply_mutation(counter, mutant.operator, mutant.site)
            assert rebuilt.source == mutant.design.source
            assert mutant.mutant_id == f"{mutant.operator}@{mutant.site}"
