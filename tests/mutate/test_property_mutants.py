"""Property test: the default operator set emits no stillborn/equivalent mutants.

The contract of :func:`repro.mutate.enumerate_mutants` is that every mutant
it returns (a) still elaborates and (b) differs semantically from the golden
design on at least one reachable state.  This suite samples (design,
operator) combinations across the corpus and *independently re-verifies*
each emitted mutant's difference witness through the public simulator /
transition-system APIs — it does not trust the filter's own verdict.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.corpus import get_corpus
from repro.fpv.transition import TransitionSystem
from repro.mutate import enumerate_mutants, operator_names
from repro.sim.simulator import Simulator
from repro.sim.stimulus import RandomStimulus, ResetSequenceStimulus

#: Small designs spanning combinational, datapath, FSM, and reset styles.
_DESIGN_NAMES = [
    "arb2",
    "half_adder",
    "t_flip_flop",
    "d_flip_flop",
    "decoder4",
    "mux4_w2",
    "counter",
    "mod6_counter",
    "seq_detect_110",
    "handshake_ctrl",
]

_CORPUS = get_corpus("assertionbench")


def _step_values(design, state, inputs, signal):
    """(env value, next-state value) of ``signal`` for one transition."""
    system = TransitionSystem(design)
    step = system.step(system.encode_state(state), inputs)
    return step.env.get(signal, 0), system.state_dict(step.next_state).get(signal)


def _traces_differ(golden, mutant, seeds=2, cycles=96):
    for seed in range(seeds):
        golden_trace = Simulator(golden).run(
            cycles=cycles,
            stimulus=ResetSequenceStimulus(RandomStimulus(seed=seed), reset_cycles=2),
        )
        mutant_trace = Simulator(mutant).run(
            cycles=cycles,
            stimulus=ResetSequenceStimulus(RandomStimulus(seed=seed), reset_cycles=2),
        )
        for cycle in range(min(golden_trace.num_cycles, mutant_trace.num_cycles)):
            if golden_trace.row(cycle) != mutant_trace.row(cycle):
                return True
    return False


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(
    name=st.sampled_from(_DESIGN_NAMES),
    operator=st.sampled_from(operator_names()),
    pick=st.integers(min_value=0, max_value=10_000),
)
def test_every_emitted_mutant_elaborates_and_differs(name, operator, pick):
    design = _CORPUS.design(name)
    mutants, stats = enumerate_mutants(design, [operator], limit=6)
    assert stats.viable == len(mutants)
    if not mutants:
        return  # the operator has no viable site in this design — fine
    mutant = mutants[pick % len(mutants)]

    # (a) The mutant elaborates: it exists as a Design with a live model,
    # and its source differs from the golden design's.
    assert mutant.design.model.signals
    assert mutant.design.source != design.source

    # (b) It differs semantically — re-check the recorded witness through
    # the public APIs, independently of the filter's internals.
    witness = mutant.witness
    assert witness is not None
    if witness.method == "state-sweep":
        golden_values = _step_values(design, witness.state, witness.inputs, witness.signal)
        mutant_values = _step_values(mutant.design, witness.state, witness.inputs, witness.signal)
        assert golden_values != mutant_values
        assert witness.golden_value in golden_values
        assert witness.mutant_value in mutant_values
    else:
        assert _traces_differ(design, mutant.design)


@pytest.mark.parametrize("name", ["counter", "decoder4", "t_flip_flop"])
def test_stats_account_for_every_site(name):
    design = _CORPUS.design(name)
    mutants, stats = enumerate_mutants(design)
    assert stats.sites == stats.viable + stats.stillborn + stats.equivalent + stats.truncated
    assert stats.viable == len(mutants)
    assert stats.viable > 0
