"""Bit-sliced lowering: transposed boolean kernels vs the scalar backends.

A bit-sliced kernel packs 64 lanes into each uint64 word of a per-bit signal
plane, so correctness hinges on exactly the places the transposition can go
wrong: partial tail words (lanes not a multiple of 64), ripple carries across
bit planes for ``+``/``-``/compares, and mask blending in control flow.  The
property tests sweep random boolean/arithmetic expressions at lane counts on
both sides of the word boundary (63/64/65) and compare against per-lane
interpreter runs; the simulation tests force the plan and compare whole
traces and packed step results against the scalar and SoA paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Design, ast
from repro.sim import EvalError, ExprEvaluator, RandomStimulus, Simulator
from repro.sim.bitslice import (
    BitPlaneExprCompiler,
    BitSlicedKernel,
    _from_planes,
    _full_words,
    _to_planes,
    bitslice_profitable,
)
from repro.sim.vector import (
    PLAN_BITSLICED,
    PLAN_FALLBACK,
    PLAN_MULTILIMB,
    PLAN_SOA,
    UnsupportedForVectorization,
    VectorKernel,
    plan_model,
    simulate_batch,
)

_NARROW_SOURCE = """\
module narrowsigs(s0, s1, s2, s3, s4, s5, t0, t1, y);
  input s0, s1, s2, s3, s4, s5;
  input [1:0] t0, t1;
  output y;
  assign y = s0;
endmodule
"""

_SIGNAL_WIDTHS = {
    "s0": 1, "s1": 1, "s2": 1, "s3": 1, "s4": 1, "s5": 1, "t0": 2, "t1": 2,
}

_BINOPS = [
    "+", "-", "&", "|", "^", "==", "!=", "<", "<=", ">", ">=", "&&", "||",
]
_UNOPS = ["~", "!", "-", "&", "|", "^"]

_atoms = st.one_of(
    st.sampled_from([ast.Identifier(name) for name in _SIGNAL_WIDTHS]),
    st.integers(0, 7).map(ast.Number),
    st.tuples(st.integers(0, 7), st.integers(1, 4)).map(
        lambda t: ast.Number(t[0] & ((1 << t[1]) - 1), t[1])
    ),
)


def _part_select(t):
    base, hi, lo = t
    if hi < lo:
        hi, lo = lo, hi
    return ast.PartSelect(base, ast.Number(hi), ast.Number(lo))


_exprs = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.tuples(st.sampled_from(_BINOPS), children, children).map(
            lambda t: ast.Binary(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(_UNOPS), children).map(
            lambda t: ast.Unary(t[0], t[1])
        ),
        st.tuples(children, children, children).map(
            lambda t: ast.Ternary(t[0], t[1], t[2])
        ),
        st.tuples(children, st.integers(0, 3)).map(
            lambda t: ast.BitSelect(t[0], ast.Number(t[1]))
        ),
        st.tuples(children, st.integers(0, 3), st.integers(0, 3)).map(_part_select),
        st.lists(children, min_size=1, max_size=3).map(
            lambda parts: ast.Concat(tuple(parts))
        ),
        st.tuples(st.integers(0, 2), children).map(
            lambda t: ast.Replicate(ast.Number(t[0]), t[1])
        ),
        # Constant shifts stay in the bit-sliced subset (plane reindexing).
        st.tuples(st.sampled_from(["<<", ">>"]), children, st.integers(0, 4)).map(
            lambda t: ast.Binary(t[0], t[1], ast.Number(t[2]))
        ),
    ),
    max_leaves=10,
)

#: Lane counts straddling the 64-lane word boundary, plus a partial tail.
_LANE_COUNTS = [1, 63, 64, 65, 130]


def _lane_values(planes, lanes):
    """Reconstruct per-lane Python ints from a plane stack.

    Unlike ``_from_planes`` this has no int64 ceiling: expression
    *intermediates* (wide concats/replicates of unsized constants) can carry
    64+ planes even though every signal plane stack stays narrow.
    """
    planes = np.asarray(planes)
    out = []
    for lane in range(lanes):
        word, bit = divmod(lane, 64)
        value = 0
        for plane in range(planes.shape[0]):
            # Constant planes broadcast along the word axis.
            column = word if planes.shape[1] > 1 else 0
            value |= ((int(planes[plane, column]) >> bit) & 1) << plane
        out.append(value)
    return out


@pytest.fixture(scope="module")
def narrow_design():
    return Design.from_source(_NARROW_SOURCE)


@pytest.fixture(scope="module")
def plane_compiler(narrow_design):
    return BitPlaneExprCompiler(narrow_design.model)


class TestPlaneRoundTrip:
    @pytest.mark.parametrize("lanes", _LANE_COUNTS)
    def test_to_from_planes(self, lanes):
        rng = np.random.default_rng(lanes)
        values = rng.integers(0, 8, size=lanes, dtype=np.int64)
        planes = _to_planes(values, 3, lanes)
        assert planes.dtype == np.uint64
        assert _from_planes(planes, lanes).tolist() == values.tolist()

    @pytest.mark.parametrize("lanes", _LANE_COUNTS)
    def test_full_words_tail(self, lanes):
        full = _full_words(lanes)
        ones = _from_planes(full.reshape(1, -1), lanes)
        assert ones.tolist() == [1] * lanes


class TestBitPlaneExpressionLanes:
    @settings(max_examples=250, deadline=None)
    @given(
        expr=_exprs,
        lanes=st.sampled_from(_LANE_COUNTS),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_random_expression_lanes_agree(
        self, narrow_design, plane_compiler, expr, lanes, seed
    ):
        interp = ExprEvaluator(narrow_design.model)
        try:
            vec = plane_compiler.compile(expr)
        except UnsupportedForVectorization:
            return
        except EvalError:
            with pytest.raises(EvalError):
                interp.eval(expr, {name: 0 for name in _SIGNAL_WIDTHS})
            return
        rng = np.random.default_rng(seed)
        envs = [
            {
                name: int(rng.integers(0, 1 << width))
                for name, width in _SIGNAL_WIDTHS.items()
            }
            for _ in range(lanes)
        ]
        cols = {
            name: _to_planes(
                np.asarray([env[name] for env in envs], dtype=np.int64),
                _SIGNAL_WIDTHS[name],
                lanes,
            )
            for name in _SIGNAL_WIDTHS
        }
        cols["__full__"] = _full_words(lanes)
        cols["__lanes__"] = np.int64(lanes)
        out = _lane_values(vec(cols), lanes)
        assert out == [interp.eval(expr, dict(env)) for env in envs], str(expr)


_FSM_SOURCE = """\
module slicefsm(clk, rst, a, b, state, flag, ones, y0, y1, y2, y3);
  input clk, rst, a, b;
  output reg [1:0] state;
  output reg flag;
  output [1:0] ones;
  output y0, y1, y2, y3;
  reg p0, p1, p2, p3;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state <= 2'd0;
      flag <= 1'b0;
      p0 <= 1'b0;
      p1 <= 1'b0;
      p2 <= 1'b1;
      p3 <= 1'b0;
    end else begin
      case (state)
        2'd0: state <= a ? 2'd1 : 2'd0;
        2'd1: state <= b ? 2'd2 : 2'd1;
        2'd2: state <= (a & b) ? 2'd3 : 2'd0;
        default: state <= 2'd0;
      endcase
      flag <= (state == 2'd3) | (a ^ b);
      p0 <= a ^ p1;
      p1 <= b & p2;
      p2 <= p3 | a;
      p3 <= ~p0;
    end
  end
  assign ones = {1'b0, a} + {1'b0, b};
  assign y0 = p0 ^ p2;
  assign y1 = p1 & flag;
  assign y2 = state < 2'd2;
  assign y3 = state[1];
endmodule
"""


class TestBitSlicedSimulation:
    def test_fsm_profitable_and_planned(self):
        design = Design.from_source(_FSM_SOURCE)
        assert bitslice_profitable(design.model)
        assert plan_model(design.model).plan == PLAN_BITSLICED

    @pytest.mark.parametrize("num_stimuli", [1, 3])
    def test_batch_matches_scalar_traces(self, num_stimuli):
        design = Design.from_source(_FSM_SOURCE)
        kernel = BitSlicedKernel(design.model)
        stimuli = [RandomStimulus(seed=seed) for seed in range(num_stimuli)]
        batched = simulate_batch(design.model, stimuli, 70, kernel=kernel)
        for seed, trace in enumerate(batched):
            scalar = Simulator(design, backend="compiled").run(
                cycles=70, stimulus=RandomStimulus(seed=seed)
            )
            for signal in trace.signals:
                assert trace.column(signal) == scalar.column(signal), (seed, signal)

    @pytest.mark.parametrize("lanes", _LANE_COUNTS)
    def test_step_packed_bit_identical_to_soa(self, lanes):
        design = Design.from_source(_FSM_SOURCE)
        sliced = BitSlicedKernel(design.model)
        soa = VectorKernel(design.model)
        rng = np.random.default_rng(lanes)
        state_bits = sum(soa.state_widths)
        input_bits = sum(soa.input_widths)
        states = rng.integers(0, 1 << state_bits, size=lanes, dtype=np.int64)
        inputs = rng.integers(0, 1 << input_bits, size=lanes, dtype=np.int64)
        env_b, next_b = sliced.step_packed(states, inputs)
        env_s, next_s = soa.step_packed(states, inputs)
        assert np.array_equal(next_b, next_s)
        for lane in range(lanes):
            assert sliced.env_row(env_b, lane) == soa.env_row(env_s, lane)


class TestPlanner:
    def test_profitability_thresholds(self, narrow_design, adder_design):
        # Eight narrow signals: worth transposing.  The adder's 4/5-bit
        # datapath signals are not.
        assert bitslice_profitable(narrow_design.model)
        assert not bitslice_profitable(adder_design.model)

    def test_forced_plans(self, monkeypatch):
        design = Design.from_source(_FSM_SOURCE)
        for plan_name, expected in (
            (PLAN_SOA, PLAN_SOA),
            (PLAN_BITSLICED, PLAN_BITSLICED),
            (PLAN_FALLBACK, PLAN_FALLBACK),
        ):
            monkeypatch.setenv("REPRO_VECTOR_PLAN", plan_name)
            plan = plan_model(design.model)
            assert plan.plan == expected
            if expected == PLAN_FALLBACK:
                assert plan.kernel is None
            else:
                assert plan.kernel is not None

    def test_forced_unknown_plan_raises(self, monkeypatch):
        design = Design.from_source(_FSM_SOURCE)
        monkeypatch.setenv("REPRO_VECTOR_PLAN", "quantum")
        with pytest.raises(ValueError):
            plan_model(design.model)

    def test_forced_multilimb_covers_narrow_model(self, monkeypatch):
        design = Design.from_source(_FSM_SOURCE)
        monkeypatch.setenv("REPRO_VECTOR_PLAN", PLAN_MULTILIMB)
        plan = plan_model(design.model)
        assert plan.plan == PLAN_MULTILIMB
        stimuli = [RandomStimulus(seed=seed) for seed in range(2)]
        batched = simulate_batch(design.model, stimuli, 30, kernel=plan.kernel)
        for seed, trace in enumerate(batched):
            scalar = Simulator(design, backend="compiled").run(
                cycles=30, stimulus=RandomStimulus(seed=seed)
            )
            for signal in trace.signals:
                assert trace.column(signal) == scalar.column(signal)
