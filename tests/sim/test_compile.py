"""Compiled-kernel backend: equivalence with the interpreter, store targets.

The compiled backend must agree with the tree-walking interpreter
bit-for-bit: the property-based tests below generate random expression trees
and random environments and compare both backends, and the simulator-level
tests compare whole traces of real corpus designs cycle by cycle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import ast, parse_expression
from repro.sim import (
    COMPILED,
    INTERPRETED,
    CompiledEvaluator,
    CompiledExecutor,
    EvalError,
    ExprEvaluator,
    Simulator,
    StatementExecutor,
    make_evaluator,
    make_executor,
)

# adder_design signals: a[3:0], b[3:0], sum[3:0], carry, total[4:0]
_SIGNAL_WIDTHS = {"a": 4, "b": 4, "sum": 4, "carry": 1, "total": 5}

_BINOPS = [
    "+", "-", "*", "/", "%", "&", "|", "^",
    "==", "!=", "<", "<=", ">", ">=", "&&", "||",
    "<<", ">>", "<<<", ">>>",
]
_UNOPS = ["~", "!", "-", "&", "|", "^"]

_atoms = st.one_of(
    st.sampled_from([ast.Identifier(name) for name in _SIGNAL_WIDTHS]),
    st.integers(0, 31).map(ast.Number),
    st.tuples(st.integers(0, 31), st.integers(1, 6)).map(
        lambda t: ast.Number(t[0], t[1])
    ),
)


def _part_select(t):
    base, hi, lo = t
    if hi < lo:
        hi, lo = lo, hi
    return ast.PartSelect(base, ast.Number(hi), ast.Number(lo))


_exprs = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.tuples(st.sampled_from(_BINOPS), children, children).map(
            lambda t: ast.Binary(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(_UNOPS), children).map(
            lambda t: ast.Unary(t[0], t[1])
        ),
        st.tuples(children, children, children).map(
            lambda t: ast.Ternary(t[0], t[1], t[2])
        ),
        st.tuples(children, st.integers(0, 5)).map(
            lambda t: ast.BitSelect(t[0], ast.Number(t[1]))
        ),
        st.tuples(children, st.integers(0, 5), st.integers(0, 5)).map(_part_select),
        st.lists(children, min_size=1, max_size=3).map(
            lambda parts: ast.Concat(tuple(parts))
        ),
        st.tuples(st.integers(0, 3), children).map(
            lambda t: ast.Replicate(ast.Number(t[0]), t[1])
        ),
    ),
    max_leaves=12,
)

_envs = st.fixed_dictionaries(
    {name: st.integers(0, (1 << width) - 1) for name, width in _SIGNAL_WIDTHS.items()}
)


@pytest.fixture(scope="module")
def interp(adder_design):
    return ExprEvaluator(adder_design.model)


@pytest.fixture(scope="module")
def compiled(adder_design):
    return CompiledEvaluator(adder_design.model)


class TestExpressionEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(expr=_exprs, env=_envs)
    def test_random_expressions_agree(self, interp, compiled, expr, env):
        try:
            expected = interp.eval(expr, dict(env))
        except EvalError:
            with pytest.raises(EvalError):
                compiled.eval(expr, dict(env))
            return
        assert compiled.eval(expr, dict(env)) == expected

    @pytest.mark.parametrize(
        "text",
        [
            "a + b",
            "a - b",
            "b - a",
            "a * b",
            "a / b",
            "a % b",
            "a % 0",
            "a / 0",
            "a ** 2",
            "(a + b) >> 1",
            "(a + b) >>> 2",
            "a << b",
            "~a",
            "!a",
            "-a",
            "&a",
            "|b",
            "^a",
            "a[3:1]",
            "a[0]",
            "{a, b}",
            "{2{b[1:0]}}",
            "a > b ? a : b",
            "a && b || !a",
            "total[4]",
            "{carry, sum} == total",
        ],
        ids=lambda t: t.replace(" ", ""),
    )
    def test_reference_expressions_agree(self, interp, compiled, text):
        expr = parse_expression(text)
        for a in (0, 1, 7, 10, 15):
            for b in (0, 3, 15):
                env = {"a": a, "b": b, "sum": (a + b) & 0xF,
                       "carry": (a + b) >> 4, "total": (a + b) & 0x1F}
                assert compiled.eval(expr, env) == interp.eval(expr, env), text

    def test_modulo_by_zero_is_masked_on_both_backends(self, interp, compiled):
        # Regression: the interpreter used to return the *unmasked* left
        # operand for % 0; both backends must mask to the operand width.
        expr = parse_expression("(a + b) % 4'd0")
        env = {"a": 15, "b": 15, "sum": 0, "carry": 0, "total": 0}
        assert interp.eval(expr, env) == (15 + 15) & 0xF
        assert compiled.eval(expr, env) == interp.eval(expr, env)

    def test_right_shift_masks_carry_headroom(self, interp, compiled):
        # Regression: >> used to leak the +1 carry bit of the left operand.
        expr = parse_expression("(a + b) >> 0")
        env = {"a": 15, "b": 15, "sum": 0, "carry": 0, "total": 0}
        assert interp.eval(expr, env) == (15 + 15) & 0xF
        assert compiled.eval(expr, env) == interp.eval(expr, env)

    def test_unknown_signal_raises_on_both_backends(self, adder_design):
        expr = parse_expression("ghost + 1")
        env = {name: 0 for name in _SIGNAL_WIDTHS}
        with pytest.raises(EvalError):
            ExprEvaluator(adder_design.model).eval(expr, env)
        with pytest.raises(EvalError):
            CompiledEvaluator(adder_design.model).eval(expr, env)

    def test_kernels_are_cached_structurally(self, compiled):
        first = compiled.compile(parse_expression("a + b"))
        second = compiled.compile(parse_expression("a + b"))
        assert first is second


class TestBackendSelection:
    def test_factories_build_requested_backend(self, adder_design):
        model = adder_design.model
        assert make_evaluator(model, INTERPRETED).backend == INTERPRETED
        assert make_evaluator(model, COMPILED).backend == COMPILED
        assert isinstance(make_executor(model, backend=COMPILED), CompiledExecutor)
        assert isinstance(make_executor(model, backend=INTERPRETED), StatementExecutor)

    def test_executor_follows_evaluator_backend(self, adder_design):
        model = adder_design.model
        compiled_eval = CompiledEvaluator(model)
        assert isinstance(make_executor(model, compiled_eval), CompiledExecutor)
        interp_eval = ExprEvaluator(model)
        assert isinstance(make_executor(model, interp_eval), StatementExecutor)

    def test_unknown_backend_rejected(self, adder_design):
        with pytest.raises(ValueError):
            make_evaluator(adder_design.model, "quantum")

    def test_simulator_reports_backend(self, adder_design):
        assert Simulator(adder_design, backend=INTERPRETED).backend == INTERPRETED
        assert Simulator(adder_design, backend=COMPILED).backend == COMPILED


@pytest.fixture(scope="module", params=[INTERPRETED, COMPILED])
def executor(request, adder_design):
    return make_executor(adder_design.model, backend=request.param)


class TestStoreTargets:
    """`store` semantics for concat and select assignment targets."""

    def _env(self):
        return {name: 0 for name in _SIGNAL_WIDTHS}

    def test_identifier_store_masks_to_width(self, executor):
        env = self._env()
        executor.store(ast.Identifier("sum"), 0x1F, env, env)
        assert env["sum"] == 0xF

    def test_bit_select_store_sets_and_clears(self, executor):
        env = self._env()
        env["a"] = 0b0101
        executor.store(parse_expression("a[1]"), 1, env, env)
        assert env["a"] == 0b0111
        executor.store(parse_expression("a[0]"), 0, env, env)
        assert env["a"] == 0b0110

    def test_part_select_store_replaces_field_only(self, executor):
        env = self._env()
        env["a"] = 0b1001
        executor.store(parse_expression("a[2:1]"), 0b11, env, env)
        assert env["a"] == 0b1111
        executor.store(parse_expression("a[3:2]"), 0, env, env)
        assert env["a"] == 0b0011

    def test_part_select_store_masks_oversized_value(self, executor):
        env = self._env()
        executor.store(parse_expression("a[2:1]"), 0xFF, env, env)
        assert env["a"] == 0b0110

    def test_concat_store_splits_msb_first(self, executor):
        # {carry, sum} = 5'b10110 → carry gets the MSB, sum the low nibble.
        env = self._env()
        target = ast.Concat((ast.Identifier("carry"), ast.Identifier("sum")))
        executor.store(target, 0b10110, env, env)
        assert env["carry"] == 1
        assert env["sum"] == 0b0110

    def test_concat_store_with_selects(self, executor):
        # {a[3:2], b[0]} = 3'b101
        env = self._env()
        target = ast.Concat((parse_expression("a[3:2]"), parse_expression("b[0]")))
        executor.store(target, 0b101, env, env)
        assert env["a"] == 0b1000
        assert env["b"] == 0b0001

    def test_nonblocking_store_stages_into_sink(self, executor):
        # A non-blocking part-select update must read the *staged* value so
        # two updates to the same register in one cycle compose.
        env = self._env()
        env["a"] = 0b1111
        sink = {}
        executor.store(parse_expression("a[1:0]"), 0, env, sink)
        executor.store(parse_expression("a[3]"), 0, env, sink)
        assert sink["a"] == 0b0100
        assert env["a"] == 0b1111


class TestSimulatorEquivalence:
    """Whole-design traces must be identical on both backends."""

    @pytest.mark.parametrize(
        "name",
        ["full_adder", "alu4", "traffic_light", "multiplier4", "lfsr8",
         "updown_counter4", "uart_tx"],
    )
    def test_traces_agree(self, corpus, name):
        design = corpus.design(name)
        trace_interp = Simulator(design, backend=INTERPRETED).run(cycles=48, seed=7)
        trace_compiled = Simulator(design, backend=COMPILED).run(cycles=48, seed=7)
        assert trace_interp.signals == trace_compiled.signals
        for signal in trace_interp.signals:
            assert trace_interp.column(signal) == trace_compiled.column(signal), (
                f"{name}.{signal} diverges between backends"
            )
