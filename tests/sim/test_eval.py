"""Unit tests for expression evaluation semantics."""

import pytest

from repro.hdl import parse_expression
from repro.sim import EvalError, ExprEvaluator


@pytest.fixture()
def evaluator(adder_design):
    return ExprEvaluator(adder_design.model)


@pytest.fixture()
def env(adder_design):
    env = {name: 0 for name in adder_design.model.signals}
    env.update({"a": 0b1010, "b": 0b0011})
    return env


def ev(evaluator, env, text):
    return evaluator.eval(parse_expression(text), env)


class TestArithmetic:
    def test_add_sub_and_masking(self, evaluator, env):
        assert ev(evaluator, env, "a + b") == 13
        assert ev(evaluator, env, "a - b") == 7
        # subtraction wraps within the operand width plus carry headroom
        assert ev(evaluator, env, "b - a") == (3 - 10) & 0x1F

    def test_addition_keeps_carry_headroom(self, evaluator, env):
        env["a"], env["b"] = 15, 2
        assert ev(evaluator, env, "a + b") == 17

    def test_mul_div_mod(self, evaluator, env):
        assert ev(evaluator, env, "a * b") == 30
        assert ev(evaluator, env, "a / b") == 3
        assert ev(evaluator, env, "a % b") == 1

    def test_division_by_zero_is_all_ones(self, evaluator, env):
        env["b"] = 0
        assert ev(evaluator, env, "a / b") == 0xF


class TestBitwiseAndLogical:
    def test_bitwise_ops(self, evaluator, env):
        assert ev(evaluator, env, "a & b") == 0b0010
        assert ev(evaluator, env, "a | b") == 0b1011
        assert ev(evaluator, env, "a ^ b") == 0b1001

    def test_not_and_negation_masked(self, evaluator, env):
        assert ev(evaluator, env, "~a") == 0b0101
        assert ev(evaluator, env, "-a") == (-10) & 0xF

    def test_logical_ops_return_bits(self, evaluator, env):
        assert ev(evaluator, env, "a && b") == 1
        assert ev(evaluator, env, "a && 0") == 0
        assert ev(evaluator, env, "0 || b") == 1
        assert ev(evaluator, env, "!a") == 0

    def test_reduction_operators(self, evaluator, env):
        assert ev(evaluator, env, "&a") == 0
        env["a"] = 0xF
        assert ev(evaluator, env, "&a") == 1
        assert ev(evaluator, env, "|a") == 1
        assert ev(evaluator, env, "^b") == 0  # 0b0011 has even parity


class TestComparisonsAndSelects:
    def test_comparisons(self, evaluator, env):
        assert ev(evaluator, env, "a > b") == 1
        assert ev(evaluator, env, "a <= b") == 0
        assert ev(evaluator, env, "a == 10") == 1
        assert ev(evaluator, env, "a != 10") == 0

    def test_bit_select_and_part_select(self, evaluator, env):
        assert ev(evaluator, env, "a[3]") == 1
        assert ev(evaluator, env, "a[0]") == 0
        assert ev(evaluator, env, "a[3:2]") == 0b10

    def test_concat_and_replicate(self, evaluator, env):
        assert ev(evaluator, env, "{a[0], b[0]}") == 0b01
        assert ev(evaluator, env, "{2{b[0]}}") == 0b11

    def test_ternary(self, evaluator, env):
        assert ev(evaluator, env, "a > b ? 5 : 6") == 5

    def test_shifts(self, evaluator, env):
        assert ev(evaluator, env, "b << 1") == 6
        assert ev(evaluator, env, "a >> 2") == 2

    def test_unknown_signal_raises(self, evaluator, env):
        with pytest.raises(EvalError):
            ev(evaluator, env, "ghost == 1")

    def test_width_inference(self, evaluator):
        assert evaluator.width_of(parse_expression("a")) == 4
        assert evaluator.width_of(parse_expression("a[0]")) == 1
        assert evaluator.width_of(parse_expression("{a, b}")) == 8
        assert evaluator.width_of(parse_expression("a == b")) == 1
