"""The family kernel is lane-for-lane identical to per-mutant kernels.

A :class:`FamilyKernel` lane carrying member id ``m`` must behave exactly
like the standalone :class:`VectorKernel` of that member's model — settled
environments, packed next states, and whole simulation traces — for every
member at once, under arbitrary (also unreachable) state/input patterns.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.corpus import get_corpus
from repro.mutate.operators import enumerate_mutants
from repro.sim.simulator import Simulator
from repro.sim.stimulus import RandomStimulus, ResetSequenceStimulus
from repro.sim.vector import GOLDEN_MEMBER, VectorKernel, lower_family, pack_tuple

_DESIGN_NAMES = ["counter", "updown_counter4", "mod6_counter", "seq_detect_110", "mux4_w2"]

_CORPUS = get_corpus("assertionbench")


@pytest.fixture(scope="module")
def lowered_families():
    families = []
    for name in _DESIGN_NAMES:
        design = _CORPUS.design(name)
        mutants, _ = enumerate_mutants(design, limit=6)
        if not mutants:
            continue
        lowering = lower_family(design.model, [m.design.model for m in mutants])
        if lowering is None:
            continue
        families.append((design, mutants, lowering))
    assert families
    return families


def _random_lanes(kernel, rng, lanes):
    states = [
        pack_tuple([rng.randrange(1 << width) for width in kernel.state_widths],
                   kernel.state_widths)
        for _ in range(lanes)
    ]
    inputs = [
        pack_tuple([rng.randrange(1 << width) for width in kernel.input_widths],
                   kernel.input_widths)
        for _ in range(lanes)
    ]
    return np.asarray(states, dtype=np.int64), np.asarray(inputs, dtype=np.int64)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_family_step_matches_per_member_kernels(lowered_families, seed):
    rng = random.Random(seed)
    design, mutants, lowering = lowered_families[rng.randrange(len(lowered_families))]
    kernel = lowering.kernel
    states, inputs = _random_lanes(kernel, rng, lanes=16)

    env_golden, next_golden = kernel.family_step_packed(
        np.full(16, GOLDEN_MEMBER, dtype=np.int64), states, inputs
    )
    solo_golden = VectorKernel(design.model)
    env_ref, next_ref = solo_golden.step_packed(states, inputs)
    assert np.array_equal(next_golden, next_ref)
    for name in design.model.signals:
        assert np.array_equal(env_golden[name], env_ref[name])

    position = rng.randrange(len(mutants))
    member = lowering.member_ids[position]
    if member is None:
        return
    env_member, next_member = kernel.family_step_packed(
        np.full(16, member, dtype=np.int64), states, inputs
    )
    solo = VectorKernel(mutants[position].design.model)
    env_solo, next_solo = solo.step_packed(states, inputs)
    assert np.array_equal(next_member, next_solo)
    for name in design.model.signals:
        assert np.array_equal(env_member[name], env_solo[name])

    # A mixed-member batch resolves every lane to its own member.
    members = np.asarray(
        [member if lane % 2 else GOLDEN_MEMBER for lane in range(16)], dtype=np.int64
    )
    env_mixed, next_mixed = kernel.family_step_packed(members, states, inputs)
    expected_next = np.where(members == member, next_solo, next_ref)
    assert np.array_equal(next_mixed, expected_next)


def test_family_simulate_matches_scalar_simulator(lowered_families):
    for design, mutants, lowering in lowered_families:
        members, designs = [], []
        for position, mutant in enumerate(mutants):
            if lowering.member_ids[position] is not None:
                members.append(lowering.member_ids[position])
                designs.append(mutant.design)
        members = [GOLDEN_MEMBER] + members
        designs = [design] + designs
        stimuli = [
            ResetSequenceStimulus(RandomStimulus(seed=seed), reset_cycles=2)
            for seed in range(2)
        ]
        traces = lowering.kernel.family_simulate(members, stimuli, cycles=24)
        for row, member_design in enumerate(designs):
            for seed in range(2):
                reference = Simulator(member_design).run(
                    cycles=24,
                    stimulus=ResetSequenceStimulus(
                        RandomStimulus(seed=seed), reset_cycles=2
                    ),
                )
                batched = traces[row][seed]
                for cycle in range(24):
                    assert batched.row(cycle) == reference.row(cycle)
