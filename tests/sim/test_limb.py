"""Multi-limb lowering: equivalence with the scalar backends past 64 bits.

The limb kernel holds every signal as 32-bit limb columns, so it must agree
bit-for-bit with the tree-walking interpreter on arbitrarily wide values —
including exactly the widths the packed int64 representation cannot hold
(63/64/65 bits), shift amounts at and past the operand width, compare
operands straddling the int64 sign bit, and the ``**`` operator no other
vector lowering accepts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.corpus import get_corpus
from repro.hdl import Design, ast
from repro.mutate.operators import enumerate_mutants
from repro.sim import EvalError, ExprEvaluator, RandomStimulus, Simulator
from repro.sim.limb import (
    LimbExprCompiler,
    MultiLimbKernel,
    _from_object,
    _to_object,
    limbs_for,
)
from repro.sim.vector import (
    GOLDEN_MEMBER,
    PLAN_MULTILIMB,
    UnsupportedForVectorization,
    lower_family,
    plan_model,
    simulate_batch,
)

_WIDE_SOURCE = """\
module widesigs(w63, w64, w65, wd, nar, b, y);
  input [62:0] w63;
  input [63:0] w64;
  input [64:0] w65;
  input [99:0] wd;
  input [3:0] nar;
  input b;
  output y;
  assign y = b;
endmodule
"""

_SIGNAL_WIDTHS = {"w63": 63, "w64": 64, "w65": 65, "wd": 100, "nar": 4, "b": 1}

_BINOPS = [
    "+", "-", "*", "/", "%", "**", "&", "|", "^",
    "==", "!=", "<", "<=", ">", ">=", "&&", "||",
    "<<", ">>", "<<<", ">>>",
]
_UNOPS = ["~", "!", "-", "&", "|", "^"]

_atoms = st.one_of(
    st.sampled_from([ast.Identifier(name) for name in _SIGNAL_WIDTHS]),
    st.integers(0, 31).map(ast.Number),
    st.tuples(st.integers(0, (1 << 70) - 1), st.integers(1, 100)).map(
        lambda t: ast.Number(t[0] & ((1 << t[1]) - 1), t[1])
    ),
)


def _part_select(t):
    base, hi, lo = t
    if hi < lo:
        hi, lo = lo, hi
    return ast.PartSelect(base, ast.Number(hi), ast.Number(lo))


_exprs = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.tuples(st.sampled_from(_BINOPS), children, children).map(
            lambda t: ast.Binary(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(_UNOPS), children).map(
            lambda t: ast.Unary(t[0], t[1])
        ),
        st.tuples(children, children, children).map(
            lambda t: ast.Ternary(t[0], t[1], t[2])
        ),
        st.tuples(children, st.integers(0, 101)).map(
            lambda t: ast.BitSelect(t[0], ast.Number(t[1]))
        ),
        st.tuples(children, st.integers(0, 101), st.integers(0, 101)).map(
            _part_select
        ),
        st.lists(children, min_size=1, max_size=3).map(
            lambda parts: ast.Concat(tuple(parts))
        ),
        st.tuples(st.integers(0, 2), children).map(
            lambda t: ast.Replicate(ast.Number(t[0]), t[1])
        ),
    ),
    max_leaves=10,
)


def _signal_values(width):
    mask = (1 << width) - 1
    boundary = sorted(
        {
            0,
            1,
            mask,
            mask - 1,
            mask >> 1,
            (1 << (width - 1)) & mask,
            ((1 << 63) - 1) & mask,
            (1 << 63) & mask,
            (1 << 64) & mask,
        }
    )
    return st.one_of(st.sampled_from(boundary), st.integers(0, mask))


_env_batches = st.lists(
    st.fixed_dictionaries(
        {name: _signal_values(width) for name, width in _SIGNAL_WIDTHS.items()}
    ),
    min_size=1,
    max_size=4,
)


@pytest.fixture(scope="module")
def wide_design():
    return Design.from_source(_WIDE_SOURCE)


@pytest.fixture(scope="module")
def limb_compiler(wide_design):
    return LimbExprCompiler(wide_design.model)


def _limb_cols(envs, model):
    cols = {}
    for name, signal in model.signals.items():
        values = np.asarray([env.get(name, 0) for env in envs], dtype=object)
        cols[name] = _from_object(values, limbs_for(signal.width))
    return cols


def _lanes(out, count):
    values = _to_object(np.asarray(out)).tolist()
    if len(values) == 1 and count > 1:
        return values * count
    return [int(v) for v in values]


class TestLimbExpressionLanes:
    @settings(max_examples=300, deadline=None)
    @given(expr=_exprs, envs=_env_batches)
    def test_random_expression_lanes_agree(self, wide_design, limb_compiler, expr, envs):
        interp = ExprEvaluator(wide_design.model)
        try:
            vec = limb_compiler.compile(expr)
        except UnsupportedForVectorization:
            return
        except EvalError:
            with pytest.raises(EvalError):
                for env in envs:
                    interp.eval(expr, dict(env))
            return
        cols = _limb_cols(envs, wide_design.model)
        lanes = _lanes(vec(cols), len(envs))
        expected = [interp.eval(expr, dict(env)) for env in envs]
        assert lanes == expected, str(expr)

    @pytest.mark.parametrize("name", ["w63", "w64", "w65", "wd"])
    @pytest.mark.parametrize("op", ["+", "-", "*", "<", "<=", ">", ">=", "==", "!="])
    def test_boundary_arithmetic_and_compares(self, wide_design, limb_compiler, name, op):
        width = _SIGNAL_WIDTHS[name]
        mask = (1 << width) - 1
        interp = ExprEvaluator(wide_design.model)
        expr = ast.Binary(op, ast.Identifier(name), ast.Identifier("wd"))
        vec = limb_compiler.compile(expr)
        specials = [0, 1, mask - 1, mask, mask >> 1, (1 << 63) & mask, ((1 << 63) - 1) & mask]
        envs = [
            {**{k: 0 for k in _SIGNAL_WIDTHS}, name: a, "wd": b}
            for a in specials
            for b in [0, 1, (1 << 63) - 1, 1 << 63, 1 << 64, (1 << 100) - 1]
        ]
        cols = _limb_cols(envs, wide_design.model)
        assert _lanes(vec(cols), len(envs)) == [
            interp.eval(expr, dict(env)) for env in envs
        ]

    @pytest.mark.parametrize("op", ["<<", ">>", "<<<", ">>>"])
    def test_shift_by_width_and_beyond(self, wide_design, limb_compiler, op):
        interp = ExprEvaluator(wide_design.model)
        expr = ast.Binary(op, ast.Identifier("w65"), ast.Identifier("nar"))
        wide_amount = ast.Binary(op, ast.Identifier("wd"), ast.Identifier("w64"))
        for tree, amounts in ((expr, [0, 1, 14, 15]), (wide_amount, [0, 63, 64, 65, 100, 101, (1 << 64) - 1])):
            vec = limb_compiler.compile(tree)
            envs = [
                {
                    **{k: 0 for k in _SIGNAL_WIDTHS},
                    "w65": (1 << 65) - 1,
                    "wd": (1 << 100) - 1,
                    "nar": amount if amount < 16 else 15,
                    "w64": amount,
                }
                for amount in amounts
            ]
            cols = _limb_cols(envs, wide_design.model)
            assert _lanes(vec(cols), len(envs)) == [
                interp.eval(tree, dict(env)) for env in envs
            ]

    def test_power_and_division_by_zero(self, wide_design, limb_compiler):
        interp = ExprEvaluator(wide_design.model)
        for op in ("**", "/", "%"):
            expr = ast.Binary(op, ast.Identifier("w65"), ast.Identifier("nar"))
            vec = limb_compiler.compile(expr)
            envs = [
                {**{k: 0 for k in _SIGNAL_WIDTHS}, "w65": base, "nar": exp}
                for base in [0, 1, 2, (1 << 65) - 1, 1 << 64]
                for exp in [0, 1, 2, 7, 15]
            ]
            cols = _limb_cols(envs, wide_design.model)
            assert _lanes(vec(cols), len(envs)) == [
                interp.eval(expr, dict(env)) for env in envs
            ], op

    def test_wide_divisor_object_fallback(self, wide_design, limb_compiler):
        interp = ExprEvaluator(wide_design.model)
        for op in ("/", "%"):
            expr = ast.Binary(op, ast.Identifier("wd"), ast.Identifier("w65"))
            vec = limb_compiler.compile(expr)
            envs = [
                {**{k: 0 for k in _SIGNAL_WIDTHS}, "wd": a, "w65": b}
                for a in [0, (1 << 100) - 1, 1 << 99]
                for b in [0, 1, (1 << 64) + 1, (1 << 65) - 1]
            ]
            cols = _limb_cols(envs, wide_design.model)
            assert _lanes(vec(cols), len(envs)) == [
                interp.eval(expr, dict(env)) for env in envs
            ], op


class TestLimbSimulation:
    @pytest.mark.parametrize(
        "name",
        ["wide_counter100", "wide_accum96", "wide_checksum96", "pow_lfsr72", "wide_shift80", "wide_mux96"],
    )
    def test_batch_matches_scalar_traces(self, name):
        design = get_corpus("assertionbench-wide").design(name)
        plan = plan_model(design.model)
        assert plan.plan == PLAN_MULTILIMB
        stimuli = [RandomStimulus(seed=seed) for seed in range(3)]
        batched = simulate_batch(design.model, stimuli, 30, kernel=plan.kernel)
        for seed, trace in enumerate(batched):
            scalar = Simulator(design, backend="compiled").run(
                cycles=30, stimulus=RandomStimulus(seed=seed)
            )
            for signal in trace.signals:
                assert trace.column(signal) == scalar.column(signal), (name, seed, signal)

    def test_settled_env_row_round_trip(self):
        design = get_corpus("assertionbench-wide").design("wide_cmp100")
        kernel = MultiLimbKernel(design.model)
        env = kernel.initial_env(4)
        values = [0, 1, (1 << 100) - 1, 1 << 99]
        env["a"] = kernel.lift_input("a", np.asarray(values, dtype=object), 4)
        env["b"] = kernel.lift_input("b", np.asarray(values[::-1], dtype=object), 4)
        assert kernel.settle(env)
        for lane in range(4):
            row = kernel.env_row(env, lane, list(design.model.signals))
            assert row["a"] == values[lane]
            assert row["maxv"] == max(values[lane], values[3 - lane])


class TestLimbFamily:
    def test_wide_family_simulate_matches_scalar(self):
        design = get_corpus("assertionbench-wide").design("wide_accum96")
        mutants, _ = enumerate_mutants(design, limit=5)
        assert mutants
        lowering = lower_family(design.model, [m.design.model for m in mutants])
        assert lowering is not None
        assert lowering.plan == PLAN_MULTILIMB
        members, designs = [GOLDEN_MEMBER], [design]
        for position, mutant in enumerate(mutants):
            if lowering.member_ids[position] is not None:
                members.append(lowering.member_ids[position])
                designs.append(mutant.design)
        stimuli = [RandomStimulus(seed=seed) for seed in range(2)]
        traces = lowering.kernel.family_simulate(members, stimuli, cycles=20)
        for row, member_design in enumerate(designs):
            for seed in range(2):
                reference = Simulator(member_design).run(
                    cycles=20, stimulus=RandomStimulus(seed=seed)
                )
                for cycle in range(20):
                    assert traces[row][seed].row(cycle) == reference.row(cycle)
