"""Unit tests for the cycle-accurate simulator."""

import pytest

from repro.hdl import Design
from repro.sim import (
    CombinationalLoopError,
    DirectedStimulus,
    ExhaustiveStimulus,
    RandomStimulus,
    ResetSequenceStimulus,
    Simulator,
    WalkingOnesStimulus,
    default_stimulus,
    simulate,
)


class TestCombinationalBehaviour:
    def test_adder_computes_sum(self, adder_design):
        sim = Simulator(adder_design)
        snapshot = sim.step({"a": 5, "b": 7})
        assert snapshot["sum"] == 12
        assert snapshot["carry"] == 0

    def test_adder_carry_out(self, adder_design):
        sim = Simulator(adder_design)
        snapshot = sim.step({"a": 15, "b": 2})
        assert snapshot["sum"] == 1
        assert snapshot["carry"] == 1

    def test_input_masking_to_width(self, adder_design):
        sim = Simulator(adder_design)
        snapshot = sim.step({"a": 0x1F, "b": 0})  # 5 bits driven into 4-bit port
        assert snapshot["a"] == 0xF

    def test_unknown_input_rejected(self, adder_design):
        sim = Simulator(adder_design)
        with pytest.raises(Exception):
            sim.apply_inputs({"nonexistent": 1})

    def test_combinational_loop_detection(self):
        source = "module loopy(y); output y; wire a; assign a = ~a; assign y = a; endmodule"
        design = Design.from_source(source)
        with pytest.raises(CombinationalLoopError):
            Simulator(design)


class TestSequentialBehaviour:
    def test_counter_counts_when_enabled(self, counter_design):
        sim = Simulator(counter_design)
        sim.step({"rst": 1, "en": 0})
        for _ in range(5):
            sim.step({"rst": 0, "en": 1})
        assert sim.env["count"] == 5

    def test_counter_holds_when_disabled(self, counter_design):
        sim = Simulator(counter_design)
        sim.step({"rst": 1, "en": 0})
        sim.step({"rst": 0, "en": 1})
        value = sim.env["count"]
        sim.step({"rst": 0, "en": 0})
        assert sim.env["count"] == value

    def test_counter_wraps_at_width(self, counter_design):
        sim = Simulator(counter_design)
        sim.step({"rst": 1, "en": 0})
        for _ in range(16):
            sim.step({"rst": 0, "en": 1})
        assert sim.env["count"] == 0

    def test_reset_clears_state(self, counter_design):
        sim = Simulator(counter_design)
        sim.step({"rst": 0, "en": 1})
        sim.step({"rst": 1, "en": 0})
        assert sim.env["count"] == 0

    def test_arbiter_priority_behaviour(self, arb2_design):
        sim = Simulator(arb2_design)
        sim.step({"rst": 1, "req1": 0, "req2": 0})
        snapshot = sim.step({"rst": 0, "req1": 1, "req2": 0})
        assert snapshot["gnt1"] == 1 and snapshot["gnt2"] == 0

    def test_load_and_read_registers(self, counter_design):
        sim = Simulator(counter_design)
        sim.load_state({"count": 9})
        assert sim.registers() == {"count": 9}


class TestTraceRuns:
    def test_run_produces_requested_cycles(self, counter_design):
        trace = Simulator(counter_design).run(cycles=25, seed=3)
        assert trace.num_cycles == 25
        assert set(trace.signals) == set(counter_design.model.signals)

    def test_run_vectors_directed(self, counter_design):
        vectors = [{"rst": 1, "en": 0}] + [{"rst": 0, "en": 1}] * 3
        trace = Simulator(counter_design).run_vectors(vectors)
        assert trace.num_cycles == 4
        assert trace.column("count")[-1] >= 2

    def test_simulate_convenience(self, adder_design):
        trace = simulate(adder_design, cycles=10)
        assert trace.num_cycles == 10

    def test_deterministic_under_same_seed(self, counter_design):
        t1 = Simulator(counter_design).run(cycles=30, seed=11)
        t2 = Simulator(counter_design).run(cycles=30, seed=11)
        assert t1.data == t2.data


class TestStimulus:
    def test_random_stimulus_respects_widths(self, counter_design):
        vectors = list(RandomStimulus(seed=1).vectors(counter_design.model, 20))
        assert len(vectors) == 20
        assert all(v["en"] in (0, 1) for v in vectors)

    def test_directed_stimulus_cycles_patterns(self, counter_design):
        stim = DirectedStimulus([{"en": 1}, {"en": 0}])
        vectors = list(stim.vectors(counter_design.model, 4))
        assert [v["en"] for v in vectors] == [1, 0, 1, 0]

    def test_exhaustive_stimulus_covers_space(self, adder_design):
        stim = ExhaustiveStimulus()
        vectors = list(stim.vectors(adder_design.model, 256))
        assert len(vectors) == 256
        assert len({(v["a"], v["b"]) for v in vectors}) == 256

    def test_walking_ones(self, adder_design):
        vectors = list(WalkingOnesStimulus().vectors(adder_design.model, 4))
        assert [v["a"] for v in vectors] == [1, 2, 4, 8]

    def test_reset_sequence_wrapper(self, counter_design):
        stim = ResetSequenceStimulus(RandomStimulus(seed=0), reset_cycles=3)
        vectors = list(stim.vectors(counter_design.model, 6))
        assert all(v["rst"] == 1 for v in vectors[:3])
        assert all(v["rst"] == 0 for v in vectors[3:])

    def test_default_stimulus_choice(self, adder_design, counter_design):
        assert isinstance(default_stimulus(adder_design.model), ExhaustiveStimulus)
        assert isinstance(default_stimulus(counter_design.model), ResetSequenceStimulus)
