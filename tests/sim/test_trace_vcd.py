"""Unit tests for the trace container and VCD export."""

import io

import pytest

from repro.sim import Simulator, Trace, write_vcd


@pytest.fixture()
def small_trace():
    trace = Trace(signals=["a", "b"], design_name="t")
    trace.append({"a": 0, "b": 1})
    trace.append({"a": 1, "b": 1})
    trace.append({"a": 1, "b": 0})
    return trace


class TestTrace:
    def test_length_and_values(self, small_trace):
        assert len(small_trace) == 3
        assert small_trace.value("a", 1) == 1
        assert small_trace.column("b") == [1, 1, 0]

    def test_row_and_rows(self, small_trace):
        assert small_trace.row(0) == {"a": 0, "b": 1}
        assert len(list(small_trace.rows())) == 3

    def test_missing_signal_in_append_raises(self, small_trace):
        with pytest.raises(KeyError):
            small_trace.append({"a": 1})

    def test_window(self, small_trace):
        window = small_trace.window(1, 2)
        assert window.num_cycles == 2
        assert window.column("a") == [1, 1]

    def test_extend_requires_same_signals(self, small_trace):
        other = Trace(signals=["a"])
        other.append({"a": 0})
        with pytest.raises(ValueError):
            small_trace.extend(other)

    def test_extend_appends_cycles(self, small_trace):
        other = Trace(signals=["a", "b"])
        other.append({"a": 0, "b": 0})
        small_trace.extend(other)
        assert small_trace.num_cycles == 4

    def test_distinct_values_and_toggles(self, small_trace):
        assert small_trace.distinct_values("a") == [0, 1]
        assert small_trace.toggle_count("a") == 1
        assert small_trace.toggle_count("b") == 1

    def test_summary(self, small_trace):
        summary = small_trace.summary()
        assert summary["a"]["max"] == 1
        assert summary["b"]["toggles"] == 1


class TestVcd:
    def test_vcd_contains_declarations_and_changes(self, counter_design):
        trace = Simulator(counter_design).run(cycles=8, seed=1)
        buffer = io.StringIO()
        write_vcd(trace, buffer, model=counter_design.model)
        text = buffer.getvalue()
        assert "$enddefinitions" in text
        assert "$var wire 4" in text  # the 4-bit counter register
        assert "#0" in text and "#70" in text

    def test_vcd_single_bit_format(self, small_trace):
        buffer = io.StringIO()
        write_vcd(small_trace, buffer)
        lines = buffer.getvalue().splitlines()
        # single-bit signals are dumped as <value><id> with no space
        assert any(line.startswith(("0", "1")) and " " not in line for line in lines if line and line[0] in "01")
