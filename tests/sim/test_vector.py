"""Vectorized (NumPy) backend: equivalence with the scalar backends.

The vector lowering must agree with the tree-walking interpreter bit-for-bit
on every expression it accepts: the property-based tests generate random
expression trees and random *batches* of environments and compare lanes
against per-environment interpreter runs.  The simulation tests compare
whole batched traces against one scalar run per stimulus, and the lowering
tests pin down which models are accepted vs. refused.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Design, ast
from repro.sim import (
    CombinationalLoopError,
    EvalError,
    ExprEvaluator,
    RandomStimulus,
    ResetSequenceStimulus,
    Simulator,
    WalkingOnesStimulus,
    stack_stimuli,
)
from repro.sim.vector import (
    UnsupportedForVectorization,
    VectorKernel,
    comb_cycle_independent,
    lower_model,
    pack_columns,
    simulate_batch,
    unpack_columns,
)

# adder_design signals: a[3:0], b[3:0], sum[3:0], carry, total[4:0]
_SIGNAL_WIDTHS = {"a": 4, "b": 4, "sum": 4, "carry": 1, "total": 5}

_BINOPS = [
    "+", "-", "*", "/", "%", "&", "|", "^",
    "==", "!=", "<", "<=", ">", ">=", "&&", "||",
    "<<", ">>", "<<<", ">>>",
]
_UNOPS = ["~", "!", "-", "&", "|", "^"]

_atoms = st.one_of(
    st.sampled_from([ast.Identifier(name) for name in _SIGNAL_WIDTHS]),
    st.integers(0, 31).map(ast.Number),
    st.tuples(st.integers(0, 31), st.integers(1, 6)).map(
        lambda t: ast.Number(t[0], t[1])
    ),
)


def _part_select(t):
    base, hi, lo = t
    if hi < lo:
        hi, lo = lo, hi
    return ast.PartSelect(base, ast.Number(hi), ast.Number(lo))


_exprs = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.tuples(st.sampled_from(_BINOPS), children, children).map(
            lambda t: ast.Binary(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(_UNOPS), children).map(
            lambda t: ast.Unary(t[0], t[1])
        ),
        st.tuples(children, children, children).map(
            lambda t: ast.Ternary(t[0], t[1], t[2])
        ),
        st.tuples(children, st.integers(0, 5)).map(
            lambda t: ast.BitSelect(t[0], ast.Number(t[1]))
        ),
        st.tuples(children, st.integers(0, 5), st.integers(0, 5)).map(_part_select),
        st.lists(children, min_size=1, max_size=3).map(
            lambda parts: ast.Concat(tuple(parts))
        ),
        st.tuples(st.integers(0, 3), children).map(
            lambda t: ast.Replicate(ast.Number(t[0]), t[1])
        ),
    ),
    max_leaves=12,
)

_env_batches = st.lists(
    st.fixed_dictionaries(
        {name: st.integers(0, (1 << width) - 1) for name, width in _SIGNAL_WIDTHS.items()}
    ),
    min_size=1,
    max_size=5,
)


@pytest.fixture(scope="module")
def adder_kernel(adder_design):
    kernel = lower_model(adder_design.model)
    assert kernel is not None
    return kernel


class TestExpressionLanes:
    @settings(max_examples=300, deadline=None)
    @given(expr=_exprs, envs=_env_batches)
    def test_random_expression_lanes_agree(self, adder_design, adder_kernel, expr, envs):
        interp = ExprEvaluator(adder_design.model)
        try:
            vec = adder_kernel.exprs.compile(expr)
        except UnsupportedForVectorization:
            # The lowering may refuse ('**', overly wide intermediates); the
            # scalar backends stay authoritative for those.
            return
        except EvalError:
            with pytest.raises(EvalError):
                for env in envs:
                    interp.eval(expr, dict(env))
            return
        cols = {
            name: np.asarray([env[name] for env in envs], dtype=np.int64)
            for name in _SIGNAL_WIDTHS
        }
        out = vec(cols)
        lanes = (
            out.tolist() if isinstance(out, np.ndarray) else [int(out)] * len(envs)
        )
        expected = [interp.eval(expr, dict(env)) for env in envs]
        assert lanes == expected, ast.render_expr(expr) if hasattr(ast, "render_expr") else str(expr)

    def test_shift_mask_of_overwide_declared_width(self, adder_design, adder_kernel):
        # A concat of width-less constants declares 64 bits even though its
        # value fits trivially; the '>>' lowering must not build a mask no
        # int64 lane can hold (regression: OverflowError at kernel time).
        expr = ast.Binary(
            op=">>",
            left=ast.Ternary(
                cond=ast.Identifier(name="a"),
                then=ast.Identifier(name="a"),
                otherwise=ast.Concat(parts=(ast.Number(value=0), ast.Number(value=0))),
            ),
            right=ast.Identifier(name="a"),
        )
        vec = adder_kernel.exprs.compile(expr)
        interp = ExprEvaluator(adder_design.model)
        envs = [{name: 0 for name in _SIGNAL_WIDTHS}, {name: 1 for name in _SIGNAL_WIDTHS}]
        cols = {
            name: np.asarray([env[name] for env in envs], dtype=np.int64)
            for name in _SIGNAL_WIDTHS
        }
        lanes = np.asarray(vec(cols)).tolist()
        assert lanes == [interp.eval(expr, dict(env)) for env in envs]


class TestPacking:
    def test_pack_unpack_round_trip(self):
        cols = {
            "x": np.asarray([3, 1, 7], dtype=np.int64),
            "y": np.asarray([0, 5, 2], dtype=np.int64),
        }
        packed = pack_columns(cols, ["x", "y"], [3, 3])
        assert packed.tolist() == [3, 1 | (5 << 3), 7 | (2 << 3)]
        unpacked = unpack_columns(packed, ["x", "y"], [3, 3])
        assert unpacked["x"].tolist() == [3, 1, 7]
        assert unpacked["y"].tolist() == [0, 5, 2]

    def test_zero_field_packing_keeps_lanes(self):
        packed = pack_columns({}, [], [], lanes=4)
        assert packed.tolist() == [0, 0, 0, 0]


class TestLowering:
    def test_every_corpus_design_lowers(self, corpus):
        # Since the multi-limb and bit-sliced strategies landed, no corpus
        # design falls back to the scalar path.
        from repro.sim.vector import plan_model

        for design in corpus.all_designs():
            plan = plan_model(design.model)
            assert plan.plan != "fallback", (design.name, plan.reason)
        # Wide-bus designs that the packed SoA representation refuses now
        # lower through limb columns instead of returning None.
        wide = plan_model(corpus.design("mtx_trps_4x4").model)
        assert wide.plan == "multilimb"
        assert lower_model(corpus.design("mtx_trps_4x4").model) is wide.kernel or True

    def test_power_operator_refuses_soa_but_lowers_multilimb(self):
        design = Design.from_source(
            "module p(input [3:0] a, output [3:0] y);\n"
            "  assign y = a ** 2;\nendmodule\n"
        )
        # The packed SoA kernel still refuses '**'; the planner routes the
        # model to the multi-limb kernel instead.
        with pytest.raises(UnsupportedForVectorization):
            VectorKernel(design.model)
        from repro.sim.vector import plan_model

        assert plan_model(design.model).plan == "multilimb"


class TestStimulusMatrix:
    def test_matrix_matches_vectors(self, corpus):
        model = corpus.design("counter").model
        stim = ResetSequenceStimulus(RandomStimulus(seed=3), reset_cycles=2)
        matrix = stim.matrix(model, 20)
        vectors = list(
            ResetSequenceStimulus(RandomStimulus(seed=3), reset_cycles=2).vectors(model, 20)
        )
        for name in model.non_clock_inputs:
            expected = [v.get(name, 0) & model.signals[name].mask for v in vectors]
            assert matrix[name].tolist() == expected

    def test_stack_shape_and_lanes(self, corpus):
        model = corpus.design("counter").model
        stimuli = [RandomStimulus(seed=s) for s in range(3)]
        stacked = stack_stimuli(stimuli, model, 10)
        for name in model.non_clock_inputs:
            assert stacked[name].shape == (10, 3)
            lane1 = RandomStimulus(seed=1).matrix(model, 10)[name]
            assert stacked[name][:, 1].tolist() == lane1.tolist()


class TestBatchedSimulation:
    @pytest.mark.parametrize(
        "name",
        ["counter", "arb2", "lfsr8", "uart_tx", "rca8", "comparator8", "shift_reg8"],
    )
    def test_batch_matches_scalar_traces(self, corpus, name):
        design = corpus.design(name)
        stimuli = [
            ResetSequenceStimulus(RandomStimulus(seed=seed), reset_cycles=2)
            for seed in range(3)
        ]
        batched = simulate_batch(design.model, stimuli, 40)
        for seed, trace in enumerate(batched):
            scalar = Simulator(design, backend="compiled").run(
                cycles=40,
                stimulus=ResetSequenceStimulus(RandomStimulus(seed=seed), reset_cycles=2),
            )
            assert trace.signals == scalar.signals
            for signal in trace.signals:
                assert trace.column(signal) == scalar.column(signal), (name, seed, signal)

    def test_walking_ones_matches_scalar(self, corpus):
        design = corpus.design("gray_encoder4")
        batched = simulate_batch(design.model, [WalkingOnesStimulus()], 16)
        scalar = Simulator(design).run(cycles=16, stimulus=WalkingOnesStimulus())
        for signal in scalar.signals:
            assert batched[0].column(signal) == scalar.column(signal)

    def test_comb_cycle_independence_classification(self, corpus):
        # acyclic assign-only networks: independent
        for name in ("comparator8", "barrel_shifter8", "hamming_encoder"):
            assert comb_cycle_independent(corpus.design(name).model), name
        # sequential design: never independent
        assert not comb_cycle_independent(corpus.design("counter").model)
        # name-level feedback (ripple carry reads its own carry vector):
        # conservatively treated as dependent even though bits are acyclic
        assert not comb_cycle_independent(corpus.design("rca8").model)

    def test_combinational_loop_raises_like_scalar(self):
        source = (
            "module osc(input a, output y);\n"
            "  wire w;\n"
            "  assign w = ~w | a;\n"
            "  assign y = w;\nendmodule\n"
        )
        design = Design.from_source(source)
        with pytest.raises(CombinationalLoopError):
            Simulator(design).run(cycles=4, stimulus=RandomStimulus(seed=0))
        with pytest.raises(CombinationalLoopError):
            simulate_batch(design.model, [RandomStimulus(seed=0)], 4)
