"""Unit tests for assertion binding and the syntax corrector."""

import pytest

from repro.sva import (
    SvaBindingError,
    SyntaxCorrector,
    bind,
    check_semantics,
    correct_assertion,
    parse_assertion,
    referenced_state_signals,
)


class TestBinding:
    def test_valid_binding(self, arb2_design):
        assertion = parse_assertion("(req1 == 1) |-> (gnt1 == 1);")
        report = bind(assertion, arb2_design)
        assert report.ok
        assert report.unknown_signals == []

    def test_unknown_signal_reported(self, arb2_design):
        assertion = parse_assertion("(reqX == 1) |-> (gnt1 == 1);")
        report = bind(assertion, arb2_design)
        assert not report.ok
        assert report.unknown_signals == ["reqX"]
        with pytest.raises(SvaBindingError):
            report.raise_if_failed()

    def test_out_of_range_bit_select(self, counter_design):
        assertion = parse_assertion("(count[7] == 1) |-> (count[0] == 1);")
        report = bind(assertion, counter_design)
        assert not report.ok
        assert report.out_of_range_selects

    def test_unknown_clock_reported(self, arb2_design):
        assertion = parse_assertion(
            "assert property (@(posedge clk2) (req1 == 1) |-> (gnt1 == 1));"
        )
        assert not bind(assertion, arb2_design).ok

    def test_clock_defaults_to_design_clock(self, arb2_design):
        assertion = parse_assertion("(req1 == 1) |=> (gnt_ == 1);")
        report = bind(assertion, arb2_design)
        assert report.ok
        assert report.clock == "clk"

    def test_check_semantics_raises_on_failure(self, arb2_design):
        with pytest.raises(SvaBindingError):
            check_semantics(parse_assertion("(ghost == 1) |-> (gnt1 == 1);"), arb2_design)

    def test_referenced_state_signals(self, arb2_design):
        assertion = parse_assertion("(gnt_ == 1 && req1 == 1) |-> (gnt1 == 0);")
        assert referenced_state_signals(assertion, arb2_design) == {"gnt_"}

    def test_parameters_are_known_names(self, counter_design):
        assertion = parse_assertion("(count == WIDTH) |-> (count != 0);")
        assert bind(assertion, counter_design).ok


class TestCorrector:
    def test_already_valid_text_untouched(self, arb2_design):
        result = correct_assertion("(req1 == 1) |-> (gnt1 == 1);", arb2_design)
        assert result.ok
        assert result.applied_rules == []

    def test_fixes_implication_and_equality(self, arb2_design):
        result = correct_assertion("(req1 = 1 & req2 = 0) -> (gnt1 = 1)", arb2_design)
        assert result.ok
        assert result.assertion.implication == "|->"
        assert "fix_implication" in result.applied_rules
        assert "fix_equality" in result.applied_rules

    def test_strips_numbering_and_markdown(self, arb2_design):
        result = correct_assertion("1. ```(req1 == 1) |-> (gnt1 == 1);```", arb2_design)
        assert result.ok

    def test_flattens_property_block(self, arb2_design):
        text = (
            "property p1; (req1 == 1) |-> (gnt1 == 1); endproperty "
            "assert property(p1);"
        )
        result = correct_assertion(text, arb2_design)
        assert result.ok

    def test_balances_parentheses(self, arb2_design):
        result = correct_assertion("((req1 == 1) |-> (gnt1 == 1);", arb2_design)
        assert result.ok

    def test_resolves_close_signal_names(self, arb2_design):
        result = correct_assertion("(req_1 == 1) |-> (gnt1 == 1);", arb2_design)
        # req_1 is close enough to req1 for fuzzy resolution
        assert result.ok
        assert "req1" in result.assertion.signals()

    def test_unfixable_prose_reports_error(self, arb2_design):
        result = correct_assertion(
            "public static void main(String[] args) { }", arb2_design
        )
        assert not result.ok
        assert result.error

    def test_unknown_signals_survive_correction(self, arb2_design):
        # Binding is not the corrector's job: the text parses, so it is "ok"
        # here, and the FPV engine will later classify it as an error.
        result = correct_assertion("(dbg_scan_chain == 1) |-> (gnt1 == 1);", arb2_design)
        assert result.ok
        assert "dbg_scan_chain" in result.assertion.signals()

    def test_correct_all_batch(self, arb2_design):
        corrector = SyntaxCorrector(design=arb2_design)
        results = corrector.correct_all(
            ["(req1 == 1) |-> (gnt1 == 1);", "(req1 = 1) -> (gnt1 = 1)"]
        )
        assert len(results) == 2
        assert all(r.ok for r in results)

    def test_fixes_delay_spelling(self, arb2_design):
        result = correct_assertion("(req1 == 1) #1 (req2 == 1) |-> (gnt1 == 0);", arb2_design)
        assert result.ok
        assert result.assertion.antecedent_depth == 1
