"""Unit tests for the SVA parser and assertion model."""

import pytest

from repro.hdl import Identifier, Number
from repro.sva import (
    NON_OVERLAPPED,
    OVERLAPPED,
    Assertion,
    AssertionSignature,
    SequenceTerm,
    SvaSyntaxError,
    SvaUnsupportedError,
    deduplicate,
    parse_assertion,
    parse_assertions,
    split_assertion_lines,
)


class TestParsing:
    def test_simple_overlapped_implication(self):
        assertion = parse_assertion("(req1 == 1 && req2 == 0) |-> (gnt1 == 1);")
        assert assertion.implication == OVERLAPPED
        assert len(assertion.antecedent) == 2
        assert len(assertion.consequent) == 1
        assert assertion.signals() == {"req1", "req2", "gnt1"}

    def test_non_overlapped_implication(self):
        assertion = parse_assertion("(a == 1) |=> (b == 0);")
        assert assertion.implication == NON_OVERLAPPED

    def test_delay_offsets(self):
        assertion = parse_assertion("(a == 1) ##2 (b == 1) |-> ##1 (c == 1);")
        offsets = sorted(term.offset for term in assertion.antecedent)
        assert offsets == [0, 2]
        assert assertion.consequent[0].offset == 1

    def test_assert_property_wrapper_and_label(self):
        assertion = parse_assertion(
            "p_handshake: assert property (@(posedge clk) (req == 1) |=> (ack == 1));"
        )
        assert assertion.name == "p_handshake"
        assert assertion.clock == "clk"
        assert assertion.clock_edge == "posedge"

    def test_disable_iff(self):
        assertion = parse_assertion(
            "assert property (@(posedge clk) disable iff (rst) (a == 1) |-> (b == 1));"
        )
        assert assertion.disable_iff is not None
        assert "rst" in assertion.signals()

    def test_bare_boolean_becomes_invariant(self):
        assertion = parse_assertion("(count <= 15)")
        assert assertion.antecedent[0].expr == Number(1)
        assert len(assertion.consequent) == 1

    def test_unsupported_operator_rejected(self):
        with pytest.raises(SvaUnsupportedError):
            parse_assertion("s_eventually (a == 1);")
        with pytest.raises(SvaUnsupportedError):
            parse_assertion("(a == 1)[*3] |-> (b == 1);")

    def test_garbage_rejected(self):
        with pytest.raises(SvaSyntaxError):
            parse_assertion("this is not an assertion at all")

    def test_empty_text_rejected(self):
        with pytest.raises(SvaSyntaxError):
            parse_assertion("   ")

    def test_missing_consequent_rejected(self):
        with pytest.raises(SvaSyntaxError):
            parse_assertion("(a == 1) |-> ;")

    def test_missing_delay_count_rejected(self):
        with pytest.raises(SvaSyntaxError):
            parse_assertion("(a == 1) ## (b == 1) |-> (c == 1);")

    def test_parse_assertions_block_and_line_splitting(self):
        text = """
        // a comment line
        (a == 1) |-> (b == 1);
        (b == 0) |=> (c == 1);
        """
        assert len(split_assertion_lines(text)) == 2
        assertions = parse_assertions(text)
        assert len(assertions) == 2


class TestSemanticsModel:
    def test_consequent_shift_overlapped(self):
        assertion = parse_assertion("(a == 1) ##1 (b == 1) |-> (c == 1);")
        # |-> evaluates the consequent where the antecedent match ends
        assert assertion.consequent_shift == 1
        assert assertion.temporal_depth == 1

    def test_consequent_shift_non_overlapped(self):
        assertion = parse_assertion("(a == 1) ##1 (b == 1) |=> (c == 1);")
        assert assertion.consequent_shift == 2
        assert assertion.temporal_depth == 2

    def test_is_combinational(self):
        assert parse_assertion("(a == 1) |-> (b == 1);").is_combinational
        assert not parse_assertion("(a == 1) |=> (b == 1);").is_combinational

    def test_to_sva_round_trips(self):
        original = parse_assertion("(a == 1) ##1 (b == 0) |=> (c == 1);")
        reparsed = parse_assertion(original.to_sva())
        assert AssertionSignature.of(original) == AssertionSignature.of(reparsed)

    def test_simple_constructor(self):
        assertion = Assertion.simple(
            Identifier("a"), Identifier("b"), clock="clk", name="p1"
        )
        assert assertion.clock == "clk"
        assert "assert property" in assertion.to_sva()

    def test_invalid_implication_rejected(self):
        with pytest.raises(ValueError):
            Assertion(
                antecedent=[SequenceTerm(0, Identifier("a"))],
                consequent=[SequenceTerm(0, Identifier("b"))],
                implication="->",
            )

    def test_deduplicate(self):
        first = parse_assertion("(a == 1) |-> (b == 1);")
        second = parse_assertion("(a == 1) |-> (b == 1);")
        third = parse_assertion("(a == 0) |-> (b == 1);")
        unique = deduplicate([first, second, third])
        assert len(unique) == 2
