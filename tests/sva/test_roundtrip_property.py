"""Property-based round-trip tests for the SVA layer.

For every assertion the corpus's generators can emit — bare property bodies,
``assert property (...)`` wrappers, labelled assertions, clocked and
unclocked forms, ``disable iff`` resets, multi-term sequences with ``##N``
delays and same-cycle conjunctions — parsing the rendered text must yield an
equivalent :class:`~repro.sva.model.Assertion`, and render → parse must be
idempotent (a second round trip changes nothing).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import parse_expression
from repro.sva import AssertionSignature, parse_assertion
from repro.sva.model import NON_OVERLAPPED, OVERLAPPED, Assertion, SequenceTerm

#: Signal names drawn from the styles the corpus designs actually use.
_SIGNALS = ("a", "b", "count", "en", "req1", "gnt_", "data_out", "state")
_COMPARATORS = ("==", "!=", "<", "<=", ">", ">=")

signals = st.sampled_from(_SIGNALS)
numbers = st.integers(min_value=0, max_value=255)
offsets = st.integers(min_value=0, max_value=4)


@st.composite
def propositions(draw) -> str:
    """A boolean proposition in the styles the generators emit."""
    flavour = draw(st.integers(min_value=0, max_value=3))
    sig = draw(signals)
    if flavour == 0:
        return f"{sig} {draw(st.sampled_from(_COMPARATORS))} {draw(numbers)}"
    if flavour == 1:
        return f"{sig} {draw(st.sampled_from(_COMPARATORS))} {draw(signals)}"
    if flavour == 2:
        return f"!{sig}"
    return f"({sig} & {draw(signals)}) == {draw(st.integers(min_value=0, max_value=1))}"


@st.composite
def sequence_terms(draw, max_terms: int = 3):
    count = draw(st.integers(min_value=1, max_value=max_terms))
    return [
        SequenceTerm(draw(offsets), parse_expression(draw(propositions())))
        for _ in range(count)
    ]


@st.composite
def assertions(draw) -> Assertion:
    return Assertion(
        antecedent=draw(sequence_terms()),
        consequent=draw(sequence_terms(max_terms=2)),
        implication=draw(st.sampled_from((OVERLAPPED, NON_OVERLAPPED))),
        clock=draw(st.sampled_from((None, "clk", "clock"))),
        clock_edge=draw(st.sampled_from(("posedge", "negedge"))),
        disable_iff=(
            parse_expression(draw(propositions()))
            if draw(st.booleans())
            else None
        ),
        name=draw(st.sampled_from(("", "p_check", "a1"))),
    )


def _equivalent(left: Assertion, right: Assertion) -> bool:
    return (
        AssertionSignature.of(left) == AssertionSignature.of(right)
        and left.implication == right.implication
        and left.clock == right.clock
        and (left.clock is None or left.clock_edge == right.clock_edge)
        and str(left.disable_iff) == str(right.disable_iff)
    )


class TestRoundTrip:
    @given(assertion=assertions(), include_assert=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_parse_render_parse_is_equivalent(self, assertion, include_assert):
        rendered = assertion.to_sva(include_assert=include_assert)
        reparsed = parse_assertion(rendered)
        assert _equivalent(assertion, reparsed), rendered

    @given(assertion=assertions())
    @settings(max_examples=100, deadline=None)
    def test_round_trip_is_idempotent(self, assertion):
        """render → parse → render → parse reaches a fixed point."""
        once = parse_assertion(assertion.to_sva())
        twice = parse_assertion(once.to_sva())
        assert _equivalent(once, twice)
        assert once.to_sva() == twice.to_sva()

    @given(assertion=assertions())
    @settings(max_examples=100, deadline=None)
    def test_temporal_depth_is_preserved(self, assertion):
        reparsed = parse_assertion(assertion.to_sva(include_assert=True))
        assert reparsed.temporal_depth == assertion.temporal_depth
        assert reparsed.antecedent_depth == assertion.antecedent_depth

    @given(assertion=assertions())
    @settings(max_examples=60, deadline=None)
    def test_label_survives_assert_wrapper(self, assertion):
        reparsed = parse_assertion(assertion.to_sva(include_assert=True))
        assert reparsed.name == assertion.name
