"""Tests for the ``python -m repro`` campaign CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import RunStore


@pytest.fixture()
def smoke_run(tmp_path, capsys):
    run_dir = tmp_path / "smoke"
    code = main(["run", "--smoke", "--run-dir", str(run_dir)])
    out = capsys.readouterr().out
    assert code == 0
    return run_dir, out


class TestRun:
    def test_smoke_run_completes_and_persists(self, smoke_run):
        run_dir, out = smoke_run
        assert "Accuracy matrix" in out
        assert "verdict cache" in out
        store = RunStore(run_dir)
        manifest = store.read_manifest()
        assert manifest["status"] == "complete"
        assert store.completed_cells()
        assert len(store.verdict_cache()) > 0

    def test_rerun_resumes_idempotently(self, smoke_run, capsys):
        run_dir, _ = smoke_run
        before = RunStore(run_dir).completed_cells()
        assert main(["run", "--smoke", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Resuming" in out
        assert RunStore(run_dir).completed_cells().keys() == before.keys()

    def test_changed_config_is_rejected(self, smoke_run, capsys):
        run_dir, _ = smoke_run
        code = main(["run", "--run-dir", str(run_dir), "--corpus",
                     "assertionbench-smoke", "--k", "5"])
        assert code == 3
        assert "use a fresh --run-dir" in capsys.readouterr().err

    def test_unknown_corpus_and_model_are_reported(self, tmp_path, capsys):
        assert main(["run", "--run-dir", str(tmp_path / "x"), "--corpus", "nope"]) == 2
        assert "no corpus named" in capsys.readouterr().err
        assert main(["run", "--run-dir", str(tmp_path / "y"), "--corpus",
                     "assertionbench-smoke", "--models", "NotAModel"]) == 2
        assert "unknown model" in capsys.readouterr().err


class TestResume:
    def test_resume_reconstructs_campaign_from_manifest(self, smoke_run, capsys):
        run_dir, _ = smoke_run
        assert main(["resume", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Resuming" in out
        assert "already committed" in out

    def test_resume_without_manifest_fails(self, tmp_path, capsys):
        assert main(["resume", "--run-dir", str(tmp_path / "empty")]) == 3
        assert "no manifest" in capsys.readouterr().err

    def test_resume_matches_uninterrupted_report(self, smoke_run, capsys):
        run_dir, first_out = smoke_run
        main(["resume", "--run-dir", str(run_dir)])
        resumed_out = capsys.readouterr().out
        first_table = first_out[first_out.index("Accuracy matrix"):].splitlines()[:6]
        resumed_table = resumed_out[resumed_out.index("Accuracy matrix"):].splitlines()[:6]
        assert first_table == resumed_table


class TestReport:
    def test_report_renders_committed_matrix(self, smoke_run, capsys):
        run_dir, _ = smoke_run
        assert main(["report", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "status=complete" in out
        assert "Accuracy matrix" in out
        assert "Comparison of generated-assertion accuracy" in out

    def test_report_without_manifest_fails(self, tmp_path, capsys):
        assert main(["report", "--run-dir", str(tmp_path / "none")]) == 2
        assert "no manifest" in capsys.readouterr().err


class TestMutate:
    @pytest.fixture()
    def mutate_run(self, tmp_path, capsys):
        run_dir = tmp_path / "mutsmoke"
        code = main(["mutate", "--smoke", "--run-dir", str(run_dir),
                     "--max-mutants", "6"])
        out = capsys.readouterr().out
        assert code == 0
        return run_dir, out

    def test_smoke_mutate_scores_and_persists(self, mutate_run):
        run_dir, out = mutate_run
        assert "Mutation kill rate per assertion" in out
        assert "Mutation score distribution per corpus category" in out
        assert "Weakest assertions by kill rate" in out
        assert "mutation outcomes:" in out
        store = RunStore(run_dir)
        assert store.mutations_path.exists()
        records, markers = store.load_mutation_log()
        assert records and markers

    def test_mutate_rerun_resumes_from_the_log(self, mutate_run, capsys):
        run_dir, first_out = mutate_run
        assert main(["mutate", "--smoke", "--run-dir", str(run_dir),
                     "--max-mutants", "6"]) == 0
        out = capsys.readouterr().out
        assert "mutating" not in out  # every design marker short-circuits
        first_table = first_out[first_out.index("Mutation kill rate"):]
        resumed_table = out[out.index("Mutation kill rate"):]
        assert first_table.splitlines()[:10] == resumed_table.splitlines()[:10]

    def test_report_mutation_renders_the_log(self, mutate_run, capsys):
        run_dir, _ = mutate_run
        assert main(["report", "--run-dir", str(run_dir), "--mutation"]) == 0
        out = capsys.readouterr().out
        assert "Mutation kill rate per assertion" in out
        assert "Weakest assertions by kill rate" in out

    def test_report_mutation_without_log_explains(self, smoke_run, capsys):
        run_dir, _ = smoke_run
        assert main(["report", "--run-dir", str(run_dir), "--mutation"]) == 0
        assert "no mutation verdicts recorded yet" in capsys.readouterr().out

    def test_unknown_operator_is_rejected(self, tmp_path, capsys):
        code = main(["mutate", "--smoke", "--run-dir", str(tmp_path / "x"),
                     "--operators", "nope"])
        assert code == 2
        assert "unknown mutation operator" in capsys.readouterr().err


class TestListCorpora:
    def test_lists_registered_corpora(self, capsys):
        assert main(["list-corpora"]) == 0
        out = capsys.readouterr().out
        assert "assertionbench" in out
        assert "assertionbench-smoke" in out
        assert "100 test" in out


class TestShardedRuns:
    def test_shards_cover_the_corpus_without_overlap(self, tmp_path, capsys):
        matrices = []
        for index in range(2):
            run_dir = tmp_path / f"shard{index}"
            code = main([
                "run", "--run-dir", str(run_dir),
                "--corpus", "assertionbench-smoke",
                "--shard", f"{index}/2", "--k", "1", "--models", "GPT-4o",
            ])
            assert code == 0
            matrices.append(RunStore(run_dir).load_matrix())
            capsys.readouterr()
        designs0 = {d.design_name for d in matrices[0].get("GPT-4o", 1).designs}
        designs1 = {d.design_name for d in matrices[1].get("GPT-4o", 1).designs}
        assert designs0 and designs1
        assert not (designs0 & designs1)
        assert len(designs0 | designs1) == 6
