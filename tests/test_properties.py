"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Design, parse_expression
from repro.hdl.metrics import analyze_source
from repro.sim import ExprEvaluator, Simulator, Trace
from repro.sva import AssertionSignature, parse_assertion
from repro.sva.model import OVERLAPPED, Assertion, SequenceTerm
from repro.fpv import TraceChecker
from repro.llm import count_tokens, flatten_verilog

_ADDER = Design.from_source(
    "module padder(a, b, sum, carry); input [3:0] a, b; output [3:0] sum;"
    " output carry; wire [4:0] t; assign t = a + b; assign sum = t[3:0];"
    " assign carry = t[4]; endmodule",
    name="padder",
)

_COUNTER = Design.from_source(
    "module pcounter(clk, rst, en, count); input clk, rst, en;"
    " output reg [3:0] count; always @(posedge clk or posedge rst)"
    " if (rst) count <= 0; else if (en) count <= count + 1; endmodule",
    name="pcounter",
)

nibbles = st.integers(min_value=0, max_value=15)
bits = st.integers(min_value=0, max_value=1)


class TestEvaluatorProperties:
    @given(a=nibbles, b=nibbles)
    @settings(max_examples=60, deadline=None)
    def test_adder_matches_python_arithmetic(self, a, b):
        snapshot = Simulator(_ADDER).step({"a": a, "b": b})
        assert snapshot["sum"] == (a + b) & 0xF
        assert snapshot["carry"] == ((a + b) >> 4) & 1

    @given(a=nibbles, b=nibbles)
    @settings(max_examples=60, deadline=None)
    def test_expression_evaluation_is_pure(self, a, b):
        evaluator = ExprEvaluator(_ADDER.model)
        env = {name: 0 for name in _ADDER.model.signals}
        env.update({"a": a, "b": b})
        expr = parse_expression("(a ^ b) | (a & b)")
        first = evaluator.eval(expr, env)
        second = evaluator.eval(expr, env)
        assert first == second
        assert 0 <= first <= 0xF

    @given(values=st.lists(st.tuples(bits, bits), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_counter_never_exceeds_width(self, values):
        sim = Simulator(_COUNTER)
        sim.step({"rst": 1, "en": 0})
        for rst, en in values:
            sim.step({"rst": rst, "en": en})
            assert 0 <= sim.env["count"] <= 15


class TestSvaProperties:
    @given(
        antecedent_value=bits,
        consequent_value=bits,
        offset=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_assertion_round_trip_preserves_signature(self, antecedent_value, consequent_value, offset):
        assertion = Assertion(
            antecedent=[SequenceTerm(0, parse_expression(f"a == {antecedent_value}"))],
            consequent=[SequenceTerm(offset, parse_expression(f"b == {consequent_value}"))],
            implication=OVERLAPPED,
        )
        reparsed = parse_assertion(assertion.to_sva())
        assert AssertionSignature.of(reparsed) == AssertionSignature.of(assertion)
        assert reparsed.temporal_depth == assertion.temporal_depth

    @given(columns=st.lists(st.tuples(bits, bits, bits), min_size=4, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_trace_checker_trigger_violation_consistency(self, columns):
        """Violations never exceed triggers, and both never exceed attempts."""
        trace = Trace(signals=list(_COUNTER.model.signals))
        for rst, en, bit in columns:
            row = {name: 0 for name in _COUNTER.model.signals}
            row.update({"rst": rst, "en": en, "count": bit})
            trace.append(row)
        checker = TraceChecker(_COUNTER.model)
        assertion = parse_assertion("(en == 1) |-> (count == 1);")
        result = checker.check(assertion, trace)
        assert 0 <= result.violations <= result.triggers <= result.attempts
        assert result.attempts == trace.num_cycles


class TestTextProperties:
    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_token_count_is_non_negative_and_stable(self, text):
        assert count_tokens(text) >= 0
        assert count_tokens(text) == count_tokens(text)

    @given(st.text(alphabet="aw x;/*\n", max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_line_classification_partitions_lines(self, source):
        metrics = analyze_source(source)
        assert metrics.code_lines + metrics.comment_lines + metrics.blank_lines == metrics.total_lines

    @given(st.text(alphabet="mod ulewirex;()\n//", max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_flatten_verilog_removes_newlines(self, source):
        assert "\n" not in flatten_verilog(source)
